package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/llm"
)

// testExecutor builds a small real model; every gateway test drives the
// actual functional engine, not a stub.
func testExecutor(t *testing.T) *llm.Executor {
	t.Helper()
	m, err := llm.NewRandom(llm.TinyConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	return llm.NewExecutor(m, core.PartialCPU)
}

// reference computes the expected token stream for a prompt — the
// gateway's contract is bit-identical output to a solo Generate.
func reference(t *testing.T, e *llm.Executor, prompt []int, n int) []int {
	t.Helper()
	want, err := llm.NewExecutor(e.Model, e.Policy).Generate(prompt, n)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

func shutdown(t *testing.T, g *Gateway) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := g.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// checkNoGoroutineLeak polls until the goroutine count returns to (near)
// its baseline — the gateway must not strand its batcher, kill watcher,
// or any per-request goroutine after Shutdown.
func checkNoGoroutineLeak(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC() // nudge finalizer/timer goroutines along
		n := runtime.NumGoroutine()
		if n <= baseline+2 { // slack for runtime/test goroutines in flux
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d running, baseline %d\n%s", n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestGatewayServesConcurrentClients is the live integration test: many
// concurrent clients with mixed prompts, server-side deadlines, and
// client-side cancels, over a KV pool tight enough to preempt. Every
// served response must be bit-identical to a solo Generate; every
// submission must be accounted for exactly once; nothing may leak.
func TestGatewayServesConcurrentClients(t *testing.T) {
	baseline := runtime.NumGoroutine()
	e := testExecutor(t)
	g, err := New(e, Config{
		MaxBatch:      4,
		QueueDepth:    64,
		KVBudget:      e.Model.Cfg.KVBytes(1, 64), // 16 blocks of 4 tokens: preemption pressure
		KVBlockTokens: 4,
	})
	if err != nil {
		t.Fatal(err)
	}

	const clients = 24
	type outcome struct {
		kind string // served | canceled | failed
		err  error
	}
	outcomes := make([]outcome, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			prompt := make([]int, 2+rng.Intn(8))
			for j := range prompt {
				prompt[j] = rng.Intn(e.Model.Cfg.VocabSize)
			}
			n := 2 + rng.Intn(10)
			ctx := context.Background()
			switch i % 6 {
			case 4: // client-side cancel, sometimes before any progress
				var cancel context.CancelFunc
				ctx, cancel = context.WithCancel(ctx)
				go func() {
					time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
					cancel()
				}()
			case 5: // aggressive deadline
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, time.Duration(1+rng.Intn(4))*time.Millisecond)
				defer cancel()
			}
			res, err := g.Submit(ctx, prompt, n)
			switch {
			case err == nil:
				want := reference(t, e, prompt, n)
				if len(res.Tokens) != len(want) {
					outcomes[i] = outcome{kind: "failed", err: fmt.Errorf("%d tokens, want %d", len(res.Tokens), len(want))}
					return
				}
				for j := range want {
					if res.Tokens[j] != want[j] {
						outcomes[i] = outcome{kind: "failed", err: fmt.Errorf("token %d diverges", j)}
						return
					}
				}
				if res.Total < res.TTFT || res.TTFT < res.QueueWait {
					outcomes[i] = outcome{kind: "failed", err: fmt.Errorf("timings out of order: %v %v %v", res.QueueWait, res.TTFT, res.Total)}
					return
				}
				outcomes[i] = outcome{kind: "served"}
			case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
				outcomes[i] = outcome{kind: "canceled"}
			default:
				outcomes[i] = outcome{kind: "failed", err: err}
			}
		}(i)
	}
	wg.Wait()
	shutdown(t, g)

	var served, canceled uint64
	for i, o := range outcomes {
		switch o.kind {
		case "served":
			served++
		case "canceled":
			canceled++
		default:
			t.Errorf("client %d: %v", i, o.err)
		}
	}
	if served == 0 {
		t.Error("no client was served")
	}
	snap := g.Snapshot()
	if snap.Completed != served {
		t.Errorf("gateway served %d, clients saw %d successes", snap.Completed, served)
	}
	if snap.Canceled != canceled {
		t.Errorf("gateway canceled %d, clients saw %d cancels", snap.Canceled, canceled)
	}
	if snap.Received != served+canceled || snap.Shed != 0 {
		t.Errorf("accounting: received=%d shed=%d, served=%d canceled=%d",
			snap.Received, snap.Shed, served, canceled)
	}
	if snap.Tokens == 0 || snap.TTFTMean <= 0 {
		t.Errorf("observability: tokens=%d ttft=%v", snap.Tokens, snap.TTFTMean)
	}
	checkNoGoroutineLeak(t, baseline)
}

// TestGatewaySheds: a queue of depth 1 in front of a single-slot batch
// must shed bursts with ErrOverloaded, and the shed count plus the
// served count must cover every submission.
func TestGatewaySheds(t *testing.T) {
	e := testExecutor(t)
	g, err := New(e, Config{MaxBatch: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	const burst = 16
	var wg sync.WaitGroup
	var served, shed uint64
	var mu sync.Mutex
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := g.Submit(context.Background(), []int{1, 2, 3}, 24)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				served++
			case errors.Is(err, ErrOverloaded):
				shed++
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	wg.Wait()
	shutdown(t, g)
	if served+shed != burst {
		t.Errorf("%d served + %d shed != %d submitted", served, shed, burst)
	}
	if served == 0 {
		t.Error("burst entirely shed")
	}
	snap := g.Snapshot()
	if snap.Completed != served || snap.Shed != shed {
		t.Errorf("snapshot served=%d shed=%d, clients saw %d and %d", snap.Completed, snap.Shed, served, shed)
	}
}

// TestGatewayValidation: impossible work is refused before it occupies a
// queue slot.
func TestGatewayValidation(t *testing.T) {
	e := testExecutor(t)
	g, err := New(e, Config{MaxNewTokens: 8, KVBudget: e.Model.Cfg.KVBytes(1, 16), KVBlockTokens: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, g)
	ctx := context.Background()
	cases := []struct {
		name   string
		prompt []int
		n      int
	}{
		{"zero-tokens", []int{1}, 0},
		{"empty-prompt", nil, 1},
		{"over-cap", []int{1}, 9},
		{"beyond-context", make([]int, e.Model.Cfg.MaxSeqLen), 8},
		{"out-of-vocab", []int{e.Model.Cfg.VocabSize}, 1},
		{"never-fits-pool", []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17}, 1},
	}
	for _, c := range cases {
		if _, err := g.Submit(ctx, c.prompt, c.n); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if snap := g.Snapshot(); snap.Rejected != uint64(len(cases)) || snap.Received != 0 {
		t.Errorf("rejected=%d received=%d, want %d and 0", snap.Rejected, snap.Received, len(cases))
	}
}

// TestGatewayShutdown: Shutdown drains in-flight work, then refuses new
// submissions; a second Shutdown is a no-op; an already-expired drain
// deadline aborts outstanding work with ErrShuttingDown.
func TestGatewayShutdown(t *testing.T) {
	baseline := runtime.NumGoroutine()
	e := testExecutor(t)
	g, err := New(e, Config{MaxBatch: 2})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := g.Submit(context.Background(), []int{3, 1, 4}, 32)
		done <- err
	}()
	// Wait for the request to be in flight, then drain.
	for g.Snapshot().Received == 0 {
		time.Sleep(time.Millisecond)
	}
	shutdown(t, g)
	if err := <-done; err != nil {
		t.Errorf("in-flight request must be drained, got %v", err)
	}
	if _, err := g.Submit(context.Background(), []int{1}, 1); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("post-shutdown Submit: %v, want ErrShuttingDown", err)
	}
	shutdown(t, g) // idempotent
	checkNoGoroutineLeak(t, baseline)
}

// TestGatewayHTTP drives the full HTTP surface over an in-memory
// listener: generation (with exact tokens), validation errors, the
// health and metrics endpoints, and the draining behaviour.
func TestGatewayHTTP(t *testing.T) {
	e := testExecutor(t)
	g, err := New(e, Config{MaxBatch: 4, QueueDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	post := func(body string) (int, []byte) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/generate", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, b
	}

	// Concurrent HTTP clients, exact tokens.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			prompt := []int{i + 1, i + 2, i + 3}
			const n = 6
			status, body := post(fmt.Sprintf(`{"prompt":[%d,%d,%d],"max_new_tokens":%d}`, prompt[0], prompt[1], prompt[2], n))
			if status != http.StatusOK {
				t.Errorf("client %d: status %d: %s", i, status, body)
				return
			}
			var res GenerateResponse
			if err := json.Unmarshal(body, &res); err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			want := reference(t, e, prompt, n)
			for j := range want {
				if res.Tokens[j] != want[j] {
					t.Errorf("client %d: token %d diverges: %v vs %v", i, j, res.Tokens, want)
					return
				}
			}
			if res.TotalMs < res.TTFTMs {
				t.Errorf("client %d: total %vms < ttft %vms", i, res.TotalMs, res.TTFTMs)
			}
		}(i)
	}
	wg.Wait()

	// Error mapping.
	if status, _ := post(`{"prompt":[],"max_new_tokens":1}`); status != http.StatusBadRequest {
		t.Errorf("empty prompt: status %d, want 400", status)
	}
	if status, _ := post(`not json`); status != http.StatusBadRequest {
		t.Errorf("bad body: status %d, want 400", status)
	}
	if status, _ := post(`{"prompt":[1,2],"max_new_tokens":4,"timeout_ms":0,"unknown_field":1}`); status != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", status)
	}

	// Health and metrics.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"lia_gateway_requests_completed_total 8",
		"lia_gateway_ttft_seconds_count 8",
		"lia_gateway_queue_wait_seconds_bucket",
	} {
		if !strings.Contains(string(mb), want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}

	// Draining flips health.
	shutdown(t, g)
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz: %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got == "" {
		t.Error("draining healthz carries no Retry-After header")
	}
	resp, err = http.Post(srv.URL+"/v1/generate", "application/json",
		bytes.NewReader([]byte(`{"prompt":[1,2],"max_new_tokens":2}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining generate: status %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got == "" {
		t.Error("draining generate carries no Retry-After header")
	}
}

// TestGatewayServerSideTimeout: a request whose server-side budget
// expires while queued behind a busy single-slot batch maps to 504.
func TestGatewayServerSideTimeout(t *testing.T) {
	e := testExecutor(t)
	g, err := New(e, Config{MaxBatch: 1, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	// Warm the client connection first: once the batcher is busy decoding,
	// a fresh dial can lose the only core for tens of milliseconds, and the
	// timed request below must reach the queue while the blockers still
	// hold it.
	if resp, err := http.Get(srv.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	// Fill the single-slot batch and its FIFO queue with long generations,
	// then send a request with a 1ms budget: it sits behind all of them
	// (admission is FIFO), so the deadline must fire while it queues.
	const blockers = 6
	var wg sync.WaitGroup
	for i := 0; i < blockers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = g.Submit(context.Background(), []int{1, 2, 3}, 120)
		}()
	}
	for g.Snapshot().Received < blockers {
		time.Sleep(time.Millisecond)
	}
	resp, err := http.Post(srv.URL+"/v1/generate", "application/json",
		bytes.NewReader([]byte(`{"prompt":[4,5],"max_new_tokens":32,"timeout_ms":1}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("status %d, want 504", resp.StatusCode)
	}
	wg.Wait()
	shutdown(t, g)
}
