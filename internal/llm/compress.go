// Compressed weight tiers: the sparse AMX and INT4 LUT-GEMV serving
// modes. Both follow EnableINT8's shape — quantize/prune every parameter
// sublayer eagerly, then route linear() through the compressed kernel —
// but unlike INT8 (whose per-pass activation scales couple stacked rows)
// both tiers compute every output row from its own input row, so they
// stay on the fused batch-decode path with no fallback.
package llm

import (
	"fmt"

	"github.com/lia-sim/lia/internal/amx"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/quant"
	"github.com/lia-sim/lia/internal/tensor"
)

// sparseWeight is one block-pruned parameter matrix in both routed
// forms: the sparse-bitmap VNNI image the CPU route runs (zero tile
// blocks skip their TileLoads and TDP) and the bf16-rounded pruned copy
// the dense (GPU) route multiplies. Both are built once at enable time
// and immutable afterwards, so forks share them.
type sparseWeight struct {
	pre   *amx.Prepacked
	gpu   tensor.Matrix
	k, n  int
	stats quant.SparseStats
}

// sparseLayer holds one decoder layer's four pruned parameter matrices.
type sparseLayer struct {
	qkv, out, fc1, fc2 sparseWeight
}

// int4Layer caches one decoder layer's INT4 group-quantized matrices.
type int4Layer struct {
	wQKV, wOut, wFC1, wFC2 quant.WeightsINT4
}

// EnableSparse prunes every parameter-sublayer weight matrix to the
// requested block-sparsity at the AMX tile granularity (lowest-magnitude
// blocks first) and prepacks the sparse-bitmap images; subsequent passes
// skip the zeroed blocks on the CPU route and multiply the same pruned
// weights densely on the GPU route, so tokens are policy-invariant
// exactly like the dense tier. Enabling replaces any other compressed
// tier. Attention scoring (the KV cache) stays dense BF16.
func (e *Executor) EnableSparse(sparsity float64) {
	e.int8 = nil
	e.int4 = nil
	e.tp = nil
	e.sparseInt8 = false
	e.sparse = make([]sparseLayer, len(e.Model.Layers))
	for i, w := range e.Model.Layers {
		e.sparse[i] = sparseLayer{
			qkv: pruneWeight(w.WQKV, sparsity),
			out: pruneWeight(w.WOut, sparsity),
			fc1: pruneWeight(w.WFC1, sparsity),
			fc2: pruneWeight(w.WFC2, sparsity),
		}
	}
}

// pruneWeight builds one sparseWeight from a dense matrix.
func pruneWeight(w tensor.Matrix, sparsity float64) sparseWeight {
	pruned, stats := quant.PruneBlocks(w, sparsity)
	pre, err := amx.PrepackBF16Sparse(pruned.Data, pruned.Rows, pruned.Cols)
	if err != nil {
		panic(fmt.Sprintf("llm: sparse prepack: %v", err))
	}
	gpu := pruned.Clone()
	amx.RoundSlice(gpu.Data)
	return sparseWeight{pre: pre, gpu: gpu, k: pruned.Rows, n: pruned.Cols, stats: stats}
}

// EnableINT4LUT quantizes every parameter-sublayer weight matrix to the
// INT4 group format (group ≤ 0 selects quant.DefaultGroupINT4) and runs
// those sublayers through the LUT-GEMV kernel regardless of policy —
// like INT8, the compressed kernel replaces both routes. Enabling
// replaces any other compressed tier.
func (e *Executor) EnableINT4LUT(group int) {
	e.int8 = nil
	e.sparse = nil
	e.tp = nil
	e.sparseInt8 = false
	e.int4 = make([]int4Layer, len(e.Model.Layers))
	for i, w := range e.Model.Layers {
		e.int4[i] = int4Layer{
			wQKV: mustQuantizeINT4(w.WQKV, group),
			wOut: mustQuantizeINT4(w.WOut, group),
			wFC1: mustQuantizeINT4(w.WFC1, group),
			wFC2: mustQuantizeINT4(w.WFC2, group),
		}
	}
}

func mustQuantizeINT4(w tensor.Matrix, group int) quant.WeightsINT4 {
	q, err := quant.QuantizeINT4(w, group)
	if err != nil {
		panic(fmt.Sprintf("llm: int4 quantize: %v", err))
	}
	return q
}

// EnableSparseINT8 combines block pruning with INT8 quantization: every
// parameter matrix is pruned to the requested block-sparsity at the INT8
// tile granularity, quantized per output column, and prepacked through
// amx.PrepackINT8Sparse, whose zero-block bitmap skips the pruned
// blocks' TileLoads and TDPBUSD issues. The skip is exact — a zero
// integer block contributes +0 to every accumulator — so tokens are
// bit-identical to dense INT8 compute over the same pruned weights.
// Enabling replaces any other compressed tier.
func (e *Executor) EnableSparseINT8(sparsity float64) {
	e.sparse = nil
	e.int4 = nil
	e.tp = nil
	e.sparseInt8 = true
	e.int8 = make([]quantizedLayer, len(e.Model.Layers))
	for i, w := range e.Model.Layers {
		qkv, _ := quant.QuantizeWeightsSparse(w.WQKV, sparsity)
		out, _ := quant.QuantizeWeightsSparse(w.WOut, sparsity)
		fc1, _ := quant.QuantizeWeightsSparse(w.WFC1, sparsity)
		fc2, _ := quant.QuantizeWeightsSparse(w.WFC2, sparsity)
		e.int8[i] = quantizedLayer{wQKV: qkv, wOut: out, wFC1: fc1, wFC2: fc2}
	}
}

// SparseINT8 reports whether the block-pruned INT8 tier is on.
func (e *Executor) SparseINT8() bool { return e.int8 != nil && e.sparseInt8 }

// Sparse reports whether the block-sparse tier is on.
func (e *Executor) Sparse() bool { return e.sparse != nil }

// INT4 reports whether the INT4 LUT tier is on.
func (e *Executor) INT4() bool { return e.int4 != nil }

// QuantTier names the active weight tier for metrics and bench labels.
func (e *Executor) QuantTier() string {
	switch {
	case e.int8 != nil && e.sparseInt8:
		return "sparse-int8"
	case e.int8 != nil:
		return "int8"
	case e.int4 != nil:
		return "int4lut"
	case e.sparse != nil:
		return "sparse"
	}
	return "dense"
}

// linearSparse is linear()'s sparse-tier body: policy-routed like the
// dense path, but the CPU route runs the sparse-bitmap image (skipping
// zero blocks) and the GPU route multiplies the pruned rounded copy.
func (e *Executor) linearSparse(li int, s model.Sublayer, x tensor.Matrix) tensor.Matrix {
	sl := &e.sparse[li]
	var sw *sparseWeight
	switch s {
	case model.QKVMapping:
		sw = &sl.qkv
	case model.OutProjection:
		sw = &sl.out
	case model.FC1:
		sw = &sl.fc1
	case model.FC2:
		sw = &sl.fc2
	default:
		panic(fmt.Sprintf("llm: %s is not a parameter sublayer", s))
	}
	if x.Cols != sw.k {
		panic(fmt.Sprintf("llm: %s matmul shape mismatch %dx%d · %dx%d", s, x.Rows, x.Cols, sw.k, sw.n))
	}
	if e.Policy.OnCPU(s) {
		out, cycles, err := amx.MatmulBF16Packed(x.Data, x.Rows, sw.pre)
		if err != nil {
			panic(fmt.Sprintf("llm: sparse AMX matmul: %v", err))
		}
		nz, total := sw.pre.BlockStats()
		e.Stats.CPUMatmuls++
		e.Stats.SparseMatmuls++
		e.Stats.SparseBlocksSkipped += uint64(total - nz)
		e.Stats.AMXCycles += cycles
		return tensor.FromSlice(x.Rows, sw.n, out)
	}
	e.Stats.GPUMatmuls++
	amx.RoundSlice(x.Data)
	return tensor.MatMul(x, sw.gpu)
}

// linearINT4 is linear()'s INT4-LUT body.
func (e *Executor) linearINT4(li int, s model.Sublayer, x tensor.Matrix) tensor.Matrix {
	q := &e.int4[li]
	var qw *quant.WeightsINT4
	switch s {
	case model.QKVMapping:
		qw = &q.wQKV
	case model.OutProjection:
		qw = &q.wOut
	case model.FC1:
		qw = &q.wFC1
	case model.FC2:
		qw = &q.wFC2
	default:
		panic(fmt.Sprintf("llm: %s is not a parameter sublayer", s))
	}
	out, cycles, err := quant.LinearINT4LUT(x, *qw)
	if err != nil {
		panic(fmt.Sprintf("llm: int4 linear: %v", err))
	}
	e.Stats.Int4Matmuls++
	e.Stats.AMXCycles += cycles
	return out
}

// WeightFootprint returns the serving footprint in bytes of the active
// weight tier across every decoder layer's parameter matrices — the
// number the gateway's lia_quant_weight_bytes gauge and the bench rows
// report. Dense and sparse price the BF16 image a deployment ships (2
// bytes per element; sparse prices the compressed nonzero-block payload
// plus bitmap), INT8/INT4 their packed formats with side tables. The
// embedding is excluded: it stays dense in every tier.
func (e *Executor) WeightFootprint() int64 {
	var total int64
	for li := range e.Model.Layers {
		switch {
		case e.int8 != nil && e.sparseInt8:
			q := &e.int8[li]
			for _, w := range []*quant.Weights{&q.wQKV, &q.wOut, &q.wFC1, &q.wFC2} {
				total += int64(w.FootprintSparse())
			}
		case e.int8 != nil:
			q := &e.int8[li]
			total += int64(q.wQKV.Footprint() + q.wOut.Footprint() + q.wFC1.Footprint() + q.wFC2.Footprint())
		case e.int4 != nil:
			q := &e.int4[li]
			total += int64(q.wQKV.Footprint() + q.wOut.Footprint() + q.wFC1.Footprint() + q.wFC2.Footprint())
		case e.sparse != nil:
			sl := &e.sparse[li]
			for _, sw := range []*sparseWeight{&sl.qkv, &sl.out, &sl.fc1, &sl.fc2} {
				total += int64(quant.SparseFootprint(sw.k, sw.n, sw.stats))
			}
		default:
			w := &e.Model.Layers[li]
			for _, m := range []tensor.Matrix{w.WQKV, w.WOut, w.WFC1, w.WFC2} {
				total += int64(2 * m.Rows * m.Cols)
			}
		}
	}
	return total
}

// SparseSkipFraction reports the aggregate zero-block fraction across
// the sparse tier's weights (0 when neither sparse tier is on) — the
// measured sparsity the analytic model's (1 − s) scaling is calibrated
// against. Covers both the BF16 block-sparse tier and the block-pruned
// INT8 tier.
func (e *Executor) SparseSkipFraction() float64 {
	var zero, total int
	switch {
	case e.sparse != nil:
		for li := range e.sparse {
			sl := &e.sparse[li]
			for _, sw := range []*sparseWeight{&sl.qkv, &sl.out, &sl.fc1, &sl.fc2} {
				zero += sw.stats.ZeroBlocks
				total += sw.stats.TotalBlocks
			}
		}
	case e.int8 != nil && e.sparseInt8:
		for li := range e.int8 {
			q := &e.int8[li]
			for _, w := range []*quant.Weights{&q.wQKV, &q.wOut, &q.wFC1, &q.wFC2} {
				nz, tot := w.BlockStats()
				zero += tot - nz
				total += tot
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(zero) / float64(total)
}
