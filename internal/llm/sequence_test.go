package llm

import (
	"context"
	"testing"

	"github.com/lia-sim/lia/internal/core"
)

// seqTestPolicies covers the routing extremes the invariance suite uses:
// everything on GPU, everything on CPU, and splits.
func seqTestPolicies() map[string]core.Policy {
	return map[string]core.Policy{
		"gpu":     {},
		"cpu":     core.FullCPU,
		"partial": core.PartialCPU,
		"split":   {true, false, true, false, true, false},
	}
}

// TestSequenceMatchesGenerate: driving a Sequence step by step emits the
// exact token stream Generate produces, for every routing policy.
func TestSequenceMatchesGenerate(t *testing.T) {
	m, err := NewRandom(TinyConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	prompt := []int{5, 17, 42, 3}
	const n = 12
	for name, pol := range seqTestPolicies() {
		want, err := NewExecutor(m, pol).Generate(prompt, n)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := NewExecutor(m, pol).NewSequence(prompt, n)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; !seq.Done(); i++ {
			tok, err := seq.Step()
			if err != nil {
				t.Fatalf("%s: step %d: %v", name, i, err)
			}
			if tok != want[i] {
				t.Fatalf("%s: step %d emitted %d, Generate emitted %d", name, i, tok, want[i])
			}
		}
		if _, err := seq.Step(); err == nil {
			t.Errorf("%s: stepping a finished sequence must error", name)
		}
		got := seq.Output()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: output diverges at %d: %v vs %v", name, i, got, want)
			}
		}
	}
}

// TestStepBatchMatchesGenerateBatch: iteration-level batching with
// ragged targets — sequences retiring at different steps, like the
// gateway's running batch — produces exactly GenerateBatch's tokens.
func TestStepBatchMatchesGenerateBatch(t *testing.T) {
	m, err := NewRandom(TinyLlamaConfig(), 11)
	if err != nil {
		t.Fatal(err)
	}
	e := NewExecutor(m, core.PartialCPU)
	prompts := [][]int{
		{1, 2, 3},
		{9, 8, 7, 6, 5},
		{50},
		{33, 44},
	}
	targets := []int{3, 9, 1, 6} // ragged: batch membership shrinks over time

	// Reference: per-prompt Generate with each target.
	want := make([][]int, len(prompts))
	for i := range prompts {
		w, err := NewExecutor(m, e.Policy).Generate(prompts[i], targets[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = w
	}

	seqs := make([]*Sequence, len(prompts))
	for i := range prompts {
		s, err := e.NewSequence(prompts[i], targets[i])
		if err != nil {
			t.Fatal(err)
		}
		seqs[i] = s
	}
	for iter := 0; ; iter++ {
		var live []*Sequence
		for _, s := range seqs {
			if !s.Done() {
				live = append(live, s)
			}
		}
		if len(live) == 0 {
			break
		}
		if err := StepBatch(context.Background(), live); err != nil {
			t.Fatalf("iteration %d: %v", iter, err)
		}
		if iter > 100 {
			t.Fatal("batch never drained")
		}
	}
	for i := range prompts {
		got := seqs[i].Output()
		if len(got) != targets[i] {
			t.Fatalf("sequence %d emitted %d tokens, want %d", i, len(got), targets[i])
		}
		for j := range got {
			if got[j] != want[i][j] {
				t.Fatalf("sequence %d diverges at token %d: %v vs %v", i, j, got, want[i])
			}
		}
	}
}

// TestNewSequenceValidation: oversized or degenerate shapes are rejected
// up front — the gateway admission path depends on failing before any
// batch slot or KV block is reserved.
func TestNewSequenceValidation(t *testing.T) {
	m, err := NewRandom(TinyConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	e := NewExecutor(m, core.Policy{})
	if _, err := e.NewSequence([]int{1}, 0); err == nil {
		t.Error("n=0 accepted")
	}
	maxSeq := m.Cfg.MaxSeqLen
	long := make([]int, maxSeq)
	if _, err := e.NewSequence(long, 2); err == nil {
		t.Error("prompt+generation beyond MaxSeqLen accepted")
	}
	// The exact boundary fits: prompt + n - 1 == MaxSeqLen.
	if _, err := e.NewSequence(long, 1); err != nil {
		t.Errorf("boundary shape rejected: %v", err)
	}
	if _, err := e.NewSequence([]int{m.Cfg.VocabSize}, 1); err == nil {
		t.Error("out-of-vocabulary token accepted")
	}
	if err := StepBatch(context.Background(), nil); err == nil {
		t.Error("empty step batch accepted")
	}
}
