package llm

import (
	"testing"

	"github.com/lia-sim/lia/internal/core"
)

func TestGreedySamplerMatchesGenerate(t *testing.T) {
	m := tinyModel(t)
	e := NewExecutor(m, core.FullGPU)
	prompt := []int{5, 6, 7}
	a, err := e.Generate(prompt, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewExecutor(m, core.FullGPU).GenerateWith(prompt, 8, GreedySampler{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("GenerateWith(greedy) must equal Generate")
		}
	}
	// nil sampler defaults to greedy.
	c, err := NewExecutor(m, core.FullGPU).GenerateWith(prompt, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != c[i] {
			t.Fatal("nil sampler should default to greedy")
		}
	}
}

func TestTopKSamplerValidation(t *testing.T) {
	if _, err := NewTopKSampler(0, 1, 1); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := NewTopKSampler(5, 0, 1); err == nil {
		t.Error("zero temperature accepted")
	}
}

func TestTopKSamplerDeterministicPerSeed(t *testing.T) {
	m := tinyModel(t)
	gen := func(seed int64) []int {
		s, err := NewTopKSampler(10, 0.8, seed)
		if err != nil {
			t.Fatal(err)
		}
		out, err := NewExecutor(m, core.FullGPU).GenerateWith([]int{1, 2, 3}, 12, s)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := gen(7), gen(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce the sequence")
		}
	}
	c := gen(8)
	same := true
	for i := range a {
		same = same && a[i] == c[i]
	}
	if same {
		t.Error("different seeds should (almost surely) diverge")
	}
}

func TestTopK1EqualsGreedy(t *testing.T) {
	m := tinyModel(t)
	s, err := NewTopKSampler(1, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewExecutor(m, core.FullGPU).GenerateWith([]int{9, 8, 7}, 10, s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewExecutor(m, core.FullGPU).Generate([]int{9, 8, 7}, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("top-1 sampling must equal greedy")
		}
	}
}

func TestTopKStaysInVocabulary(t *testing.T) {
	m := tinyModel(t)
	s, _ := NewTopKSampler(200, 2.0, 5) // K beyond vocab clamps
	out, err := NewExecutor(m, core.PartialCPU).GenerateWith([]int{1}, 20, s)
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range out {
		if tok < 0 || tok >= m.Cfg.VocabSize {
			t.Fatalf("token %d out of vocabulary", tok)
		}
	}
}

func TestTopKVariety(t *testing.T) {
	// With a high temperature the sampler should not get stuck on one
	// token for the whole generation.
	m := tinyModel(t)
	s, _ := NewTopKSampler(20, 3.0, 11)
	out, err := NewExecutor(m, core.FullGPU).GenerateWith([]int{1, 2}, 30, s)
	if err != nil {
		t.Fatal(err)
	}
	uniq := map[int]bool{}
	for _, tok := range out {
		uniq[tok] = true
	}
	if len(uniq) < 5 {
		t.Errorf("only %d distinct tokens at temperature 3", len(uniq))
	}
}

func TestDivergenceSelfIsZero(t *testing.T) {
	m := tinyModel(t)
	a := NewExecutor(m, core.FullGPU)
	b := NewExecutor(m, core.FullGPU)
	prompts := [][]int{{1, 2, 3}, {9, 8}, {42}}
	rel, agree, err := Divergence(a, b, prompts)
	if err != nil {
		t.Fatal(err)
	}
	if rel != 0 || agree != 1 {
		t.Errorf("self-divergence = %v, agreement = %v", rel, agree)
	}
	if _, _, err := Divergence(a, b, nil); err == nil {
		t.Error("empty prompt set accepted")
	}
}

// TestDivergenceINT8Small: W8A8 quantization stays within a few percent
// relative logit deviation on the tiny model, with high top-1 agreement —
// the functional counterpart of the quantization study.
func TestDivergenceINT8Small(t *testing.T) {
	m := tinyModel(t)
	ref := NewExecutor(m, core.FullGPU)
	q := NewExecutor(m, core.FullGPU)
	q.EnableINT8()
	prompts := [][]int{{1, 2, 3}, {50, 60, 70}, {7, 14, 21}, {99, 3}, {11, 22, 33, 44}}
	rel, agree, err := Divergence(ref, q, prompts)
	if err != nil {
		t.Fatal(err)
	}
	if rel > 0.10 {
		t.Errorf("INT8 divergence = %.3f, want ≤0.10", rel)
	}
	if agree < 0.6 {
		t.Errorf("top-1 agreement = %.2f, want ≥0.6", agree)
	}
}

// TestDivergenceCPUvsGPUKernels: the AMX tile pipeline and the dense path
// agree to float tolerance (policy invariance, quantified).
func TestDivergenceCPUvsGPUKernels(t *testing.T) {
	m := tinyModel(t)
	rel, agree, err := Divergence(NewExecutor(m, core.FullGPU), NewExecutor(m, core.FullCPU),
		[][]int{{1, 2, 3}, {4, 5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if rel > 1e-4 || agree != 1 {
		t.Errorf("kernel divergence = %v, agreement = %v", rel, agree)
	}
}
