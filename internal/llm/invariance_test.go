package llm

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/lia-sim/lia/internal/core"
)

// goldenPath holds the tokens the seed implementation generated for every
// policy × precision × architecture. The optimized engine must reproduce
// them bit-for-bit: packing is layout-only, cached rounding preserves the
// rounding order, and the in-place KV cache holds the same values, so any
// divergence is a real numerics bug, not noise.
const goldenPath = "testdata/golden_tokens.json"

// goldenCase identifies one generation in the golden file.
func goldenKey(cfg string, p core.Policy, int8 bool) string {
	mode := "bf16"
	if int8 {
		mode = "int8"
	}
	return fmt.Sprintf("%s/%s/%s", cfg, p, mode)
}

func goldenRuns(t *testing.T) map[string]func() ([]int, error) {
	t.Helper()
	runs := map[string]func() ([]int, error){}
	optM, err := NewRandom(TinyConfig(), 42)
	if err != nil {
		t.Fatal(err)
	}
	llamaM, err := NewRandom(TinyLlamaConfig(), 42)
	if err != nil {
		t.Fatal(err)
	}
	type arch struct {
		name   string
		m      *Model
		prompt []int
	}
	for _, a := range []arch{
		{"tiny-opt", optM, []int{5, 17, 42, 9, 63}},
		{"tiny-llama", llamaM, []int{9, 33, 71}},
	} {
		for _, p := range core.AllPolicies() {
			for _, int8Mode := range []bool{false, true} {
				a, p, int8Mode := a, p, int8Mode
				runs[goldenKey(a.name, p, int8Mode)] = func() ([]int, error) {
					e := NewExecutor(a.m, p)
					if int8Mode {
						e.EnableINT8()
					}
					return e.Generate(a.prompt, 12)
				}
			}
		}
	}
	return runs
}

// TestGoldenPolicyInvariance regenerates every (policy, precision,
// architecture) combination and compares against the tokens recorded from
// the pre-optimization seed implementation. Regenerate with
// LLM_UPDATE_GOLDEN=1 only when numerics are intentionally changed.
func TestGoldenPolicyInvariance(t *testing.T) {
	runs := goldenRuns(t)
	if os.Getenv("LLM_UPDATE_GOLDEN") == "1" {
		golden := map[string][]int{}
		for key, run := range runs {
			toks, err := run()
			if err != nil {
				t.Fatalf("%s: %v", key, err)
			}
			golden[key] = toks
		}
		buf, err := json.MarshalIndent(golden, "", "\t")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden generations", len(golden))
		return
	}

	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with LLM_UPDATE_GOLDEN=1): %v", err)
	}
	var golden map[string][]int
	if err := json.Unmarshal(buf, &golden); err != nil {
		t.Fatal(err)
	}
	if len(golden) != len(runs) {
		t.Fatalf("golden file has %d cases, want %d", len(golden), len(runs))
	}
	if testing.Short() {
		// Under -short, spot-check the canonical policies only.
		keep := map[string][]int{}
		for _, a := range []string{"tiny-opt", "tiny-llama"} {
			for _, p := range []core.Policy{core.FullGPU, core.FullCPU, core.PartialCPU, core.MoEPartial} {
				for _, int8Mode := range []bool{false, true} {
					k := goldenKey(a, p, int8Mode)
					keep[k] = golden[k]
				}
			}
		}
		golden = keep
	}
	for key, want := range golden {
		run, ok := runs[key]
		if !ok {
			t.Fatalf("golden case %s has no generator", key)
		}
		got, err := run()
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: tokens diverged from seed implementation:\n got %v\nwant %v", key, got, want)
		}
	}
}
