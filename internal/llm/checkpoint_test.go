package llm

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"github.com/lia-sim/lia/internal/core"
)

func TestCheckpointRoundTrip(t *testing.T) {
	m := tinyModel(t)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Cfg != m.Cfg {
		t.Errorf("config mismatch: %+v vs %+v", loaded.Cfg, m.Cfg)
	}
	// Weights round-trip through BF16: the original NewRandom weights are
	// float32, so allow bf16 rounding; generation must agree because both
	// executors round weights to bf16 anyway.
	ref, err := NewExecutor(m, core.FullGPU).Generate([]int{5, 6, 7}, 10)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewExecutor(loaded, core.FullGPU).Generate([]int{5, 6, 7}, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("generation diverged after checkpoint round trip: %v vs %v", got, ref)
		}
	}
}

func TestCheckpointRoundTripGQA(t *testing.T) {
	m := tinyLlama(t)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Cfg.GatedFFN || loaded.Cfg.KVHeads != 2 {
		t.Errorf("GQA/gated config lost: %+v", loaded.Cfg)
	}
	if loaded.Layers[0].WFC1.Cols != m.Layers[0].WFC1.Cols {
		t.Error("gated FC1 shape lost")
	}
}

func TestCheckpointFile(t *testing.T) {
	m := tinyModel(t)
	path := filepath.Join(t.TempDir(), "model.lia")
	if err := SaveCheckpointFile(path, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Cfg.Name != m.Cfg.Name {
		t.Error("name lost")
	}
	if _, err := LoadCheckpointFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	if _, err := LoadCheckpoint(strings.NewReader("XXXX-not-a-checkpoint")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := LoadCheckpoint(strings.NewReader("LIA1")); err == nil {
		t.Error("truncated header accepted")
	}
	// Valid header, truncated payload.
	m := tinyModel(t)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, m); err != nil {
		t.Fatal(err)
	}
	truncated := buf.Bytes()[:buf.Len()/2]
	if _, err := LoadCheckpoint(bytes.NewReader(truncated)); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestCheckpointIsBF16Sized(t *testing.T) {
	m := tinyModel(t)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, m); err != nil {
		t.Fatal(err)
	}
	// Rough bound: payload ≈ 2 bytes/param; must be well under the float32
	// size.
	var params int
	for _, ten := range modelTensors(m) {
		params += len(ten.Data)
	}
	if buf.Len() > params*3 {
		t.Errorf("checkpoint %d bytes for %d params — not BF16-compressed?", buf.Len(), params)
	}
	if buf.Len() < params*2 {
		t.Errorf("checkpoint %d bytes too small for %d params", buf.Len(), params)
	}
}
