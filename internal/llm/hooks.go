package llm

import "github.com/lia-sim/lia/internal/model"

// MemHost observes the executor's memory traffic: weight-pack residency,
// KV-cache lifetime, and per-pass access patterns. A host never supplies
// data and never alters the math — every hook is purely observational, so
// a hosted executor's tokens are bit-identical to a resident one's (the
// offload differential test pins this across the full invariance corpus).
//
// The executor invokes CacheCreated/CacheRetired from whichever goroutine
// owns the cache, and BeginPass once per forward pass; hosts must be safe
// for concurrent calls (batch sequences run on forked executors in
// parallel). The PassHooks a host returns is used by a single goroutine
// for the duration of that pass.
type MemHost interface {
	// CacheCreated announces a new KV cache with capRows rows of capacity.
	// IDs are unique per shared executor family and never reused.
	CacheCreated(id int64, capRows int)
	// CacheRetired announces that a cache's storage can be reclaimed.
	// Retiring an unknown or already-retired id is a no-op.
	CacheRetired(id int64)
	// BeginPass starts one forward pass: rows fresh positions appended to
	// cacheID after past cached ones. The returned hooks receive that
	// pass's layer events; a nil return disables per-pass observation.
	BeginPass(cacheID int64, stage model.Stage, rows, past int) PassHooks
}

// PassHooks receives one forward pass's memory events in execution order.
// Implementations may block (e.g. to model a prefetch dependency); the
// executor calls them synchronously from the pass's goroutine.
type PassHooks interface {
	// LayerStart fires before layer li's first sublayer executes.
	LayerStart(li int)
	// WeightPacked fires when a parameter sublayer's weight is converted
	// to a static layout (VNNI pack or BF16 rounding) — at most once per
	// (layer, sublayer, route) across the executor family.
	WeightPacked(li int, s model.Sublayer)
	// WeightAccess fires on every use of a parameter sublayer's weights.
	WeightAccess(li int, s model.Sublayer)
	// KVWrite fires after rows fresh K/V rows are appended for layer li.
	KVWrite(li, rows int)
	// KVRead fires when layer li's attention reads rows cached positions.
	KVRead(li, rows int)
	// EndPass fires after the final layer, before the LM head.
	EndPass()
}
