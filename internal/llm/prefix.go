package llm

import (
	"fmt"

	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/tensor"
)

// KVSegment is a contiguous run of cached KV rows: one K and one V matrix
// per layer, all with the same row count (the segment's token span). The
// prefix cache (internal/kvprefix) hands sequences of segments — one per
// radix-tree node on the matched path — and PrefillFrom replays them into
// a fresh cache. Matrices may be views into shared storage; PrefillFrom
// copies rows in, never writes through them.
type KVSegment struct {
	K, V []tensor.Matrix
}

// Tokens returns the segment's token span (0 for an empty segment).
func (s KVSegment) Tokens() int {
	if len(s.K) == 0 {
		return 0
	}
	return s.K[0].Rows
}

// KVSeed is the cached KV prefix a sequence resumes from, in prompt
// order.
type KVSeed struct {
	Segments []KVSegment
}

// Tokens returns the total cached prefix length.
func (s *KVSeed) Tokens() int {
	if s == nil {
		return 0
	}
	n := 0
	for _, seg := range s.Segments {
		n += seg.Tokens()
	}
	return n
}

// validate checks every segment against the model shape.
func (s *KVSeed) validate(layers, kvDim int) error {
	for i, seg := range s.Segments {
		if len(seg.K) != layers || len(seg.V) != layers {
			return fmt.Errorf("llm: seed segment %d has %d/%d layer matrices, model has %d layers",
				i, len(seg.K), len(seg.V), layers)
		}
		rows := seg.K[0].Rows
		for li := 0; li < layers; li++ {
			if seg.K[li].Rows != rows || seg.V[li].Rows != rows {
				return fmt.Errorf("llm: seed segment %d has ragged rows across layers", i)
			}
			if seg.K[li].Cols != kvDim || seg.V[li].Cols != kvDim {
				return fmt.Errorf("llm: seed segment %d has KV width %d, model wants %d",
					i, seg.K[li].Cols, kvDim)
			}
		}
	}
	return nil
}

// PrefillFrom is Prefill resuming from a cached prefix: the seed's KV
// rows (the first seed.Tokens() prompt positions, as produced by an
// earlier prefill of the same model over the same tokens) are copied into
// a fresh cache and only the remaining suffix is computed. On the BF16
// path the returned logits and cache are bit-identical to a full
// Prefill(prompt): the AMX and dense kernels are row-independent, causal
// masking makes suffix rows attend to exactly the positions a full
// prefill would, and RoPE rotates by absolute position — so skipping the
// prefix changes no suffix value. Differential tests pin this.
//
// INT8 mode falls back to a full prefill: activation quantization is
// per-tensor (quant.QuantizeActivations takes the min/max over every row
// in the pass), so each row's quantized value depends on which other rows
// share its pass — a seeded suffix would see different scales than the
// full prompt did and diverge. The prefix cache still provides its
// capacity win there (shared blocks are still counted once); only the
// compute skip is BF16-only.
//
// A nil or empty seed is exactly Prefill. The seed must be strictly
// shorter than the prompt — resuming with nothing left to compute would
// leave no last-position logits to return.
func (e *Executor) PrefillFrom(prompt []int, seed *KVSeed) (tensor.Matrix, *KVCache, error) {
	cached := seed.Tokens()
	if cached == 0 || e.int8 != nil {
		return e.Prefill(prompt)
	}
	if len(prompt) == 0 {
		return tensor.Matrix{}, nil, fmt.Errorf("llm: empty prompt")
	}
	if cached >= len(prompt) {
		return tensor.Matrix{}, nil, fmt.Errorf("llm: seed covers %d of %d prompt tokens — nothing left to prefill",
			cached, len(prompt))
	}
	cfg := e.Model.Cfg
	if cached > cfg.MaxSeqLen {
		return tensor.Matrix{}, nil, fmt.Errorf("llm: seed length %d exceeds max sequence length %d", cached, cfg.MaxSeqLen)
	}
	if err := seed.validate(len(e.Model.Layers), cfg.KVDim()); err != nil {
		return tensor.Matrix{}, nil, err
	}
	x, err := e.embed(prompt[cached:], cached)
	if err != nil {
		return tensor.Matrix{}, nil, err
	}
	cache := e.NewCache()
	for _, seg := range seed.Segments {
		for li := range e.Model.Layers {
			cache.Append(li, seg.K[li], seg.V[li])
		}
	}
	e.beginPass(cache, model.Prefill, len(prompt)-cached, cached)
	for li := range e.Model.Layers {
		x = e.forwardLayer(li, x, cache, true)
	}
	e.endPass()
	return e.logits(x), cache, nil
}

// ExportKV deep-copies cache rows [from, to) into a standalone segment —
// what the gateway inserts into the prefix tree after a prefill. The
// copy decouples the tree's data from the sequence's in-place growing
// cache.
func (e *Executor) ExportKV(c *KVCache, from, to int) (KVSegment, error) {
	if c == nil {
		return KVSegment{}, fmt.Errorf("llm: export from nil cache")
	}
	if from < 0 || to > c.Len() || from >= to {
		return KVSegment{}, fmt.Errorf("llm: export range [%d, %d) outside cache of %d rows", from, to, c.Len())
	}
	kvDim := e.Model.Cfg.KVDim()
	seg := KVSegment{}
	for li := range e.Model.Layers {
		k := tensor.New(to-from, kvDim)
		copy(k.Data, c.K[li].Data[from*kvDim:to*kvDim])
		v := tensor.New(to-from, kvDim)
		copy(v.Data, c.V[li].Data[from*kvDim:to*kvDim])
		seg.K = append(seg.K, k)
		seg.V = append(seg.V, v)
	}
	return seg, nil
}

// NewSequenceFrom is NewSequence resuming from a cached KV prefix (see
// PrefillFrom for the exact semantics, including the INT8 fallback). The
// emitted tokens are bit-identical to NewSequence(prompt, n).
func (e *Executor) NewSequenceFrom(prompt []int, n int, seed *KVSeed) (*Sequence, error) {
	if n < 1 {
		return nil, fmt.Errorf("llm: sequence must emit at least one token, got %d", n)
	}
	if len(prompt)+n-1 > e.Model.Cfg.MaxSeqLen {
		return nil, fmt.Errorf("llm: prompt %d + %d generated tokens exceeds max sequence length %d",
			len(prompt), n, e.Model.Cfg.MaxSeqLen)
	}
	sub := e.fork()
	logits, cache, err := sub.PrefillFrom(prompt, seed)
	if err != nil {
		return nil, err
	}
	return &Sequence{
		e:          sub,
		cache:      cache,
		pending:    logits.ArgmaxRow(logits.Rows - 1),
		out:        make([]int, 0, n),
		target:     n,
		prompt:     prompt,
		prefillPos: len(prompt),
	}, nil
}

// ExportKV deep-copies the sequence's cache rows [from, to) (the
// gateway's insert path after prefill).
func (s *Sequence) ExportKV(from, to int) (KVSegment, error) {
	return s.e.ExportKV(s.cache, from, to)
}
