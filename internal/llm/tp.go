// Tensor-parallel executor mode: one functional model sharded across K
// simulated GPUs, the §7.8/§8 multi-GPU extension made real. Every
// parameter sublayer is column-parallel — each virtual rank owns whole
// attention heads of the QKV projection and contiguous column slices of
// the out-projection and FFN matrices — and the rank outputs are
// reassembled by an all-gather, which is pure concatenation. Because
// every output element keeps exactly the unsharded kernel's reduction
// over the full inner dimension (no cross-rank partial sums are ever
// added together), tokens are bit-identical to the unsharded executor on
// every offloading policy, on the fused batch-decode path, and under
// speculative decoding.
//
// The communication a real sharding would pay is priced, not performed:
// each decoder layer charges the analytic DGX model's two ring
// all-reduces on the hidden states (core.TPAllReduceTime, the same
// calibrated formula engine's MultiGPU baseline integrates) into a
// virtual comm clock the TPStats expose. Pricing is observational only —
// it never touches the computed values.
package llm

import (
	"fmt"
	"sync/atomic"

	"github.com/lia-sim/lia/internal/amx"
	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/tensor"
	"github.com/lia-sim/lia/internal/units"
)

// colSpan maps one contiguous column range of a rank's shard back to its
// position in the full (unsharded) output matrix.
type colSpan struct {
	dst   int // first column in the full output
	width int
}

// tpShard is one rank's slice of a parameter matrix: the materialized
// column slice, where its columns land in the full output, and the
// per-route packed forms (built lazily, shared by forks — same
// lifecycle as the dense tier's packedWeight).
type tpShard struct {
	w     tensor.Matrix
	spans []colSpan
	cache packedWeight
}

// tpSublayer is one parameter sublayer split across the ranks.
type tpSublayer struct {
	shards []tpShard
	fullN  int
}

// tpLayer holds one decoder layer's four sharded parameter sublayers.
type tpLayer struct {
	qkv, out, fc1, fc2 tpSublayer
}

// tpState is the executor-family-wide tensor-parallel state: the sharded
// weights plus the virtual communication clock. Forks share it; the
// comm counters are atomic.
type tpState struct {
	ways   int
	peer   hw.LinkSpec
	layers []tpLayer

	allReduces atomic.Int64
	commPs     atomic.Int64 // virtual comm time in picoseconds (integer, so accumulation is exact and race-free)
}

// TPStats reports the tensor-parallel mode's virtual communication
// ledger.
type TPStats struct {
	// Ways is the shard count (0 when TP is off).
	Ways int
	// AllReduces counts the priced ring all-reduces (two per decoder
	// layer per forward pass, after the out-projection and FC2 — the
	// analytic MultiGPU baseline's schedule).
	AllReduces int64
	// Comm is the accumulated virtual all-reduce time.
	Comm units.Seconds
}

// EnableTP shards every parameter sublayer column-parallel across `ways`
// virtual GPUs linked by `peer` (the all-reduce fabric the virtual comm
// clock prices). The query heads, KV heads, FFN hidden width, and model
// width must all divide evenly by `ways`. TP requires the dense BF16
// tier without a memory host; enabling a compressed tier afterwards
// turns TP back off.
func (e *Executor) EnableTP(ways int, peer hw.LinkSpec) error {
	cfg := e.Model.Cfg
	if ways < 2 {
		return fmt.Errorf("llm: tensor parallelism needs ≥2 ways, got %d", ways)
	}
	if e.int8 != nil || e.sparse != nil || e.int4 != nil {
		return fmt.Errorf("llm: tensor parallelism requires the dense BF16 tier (got %s)", e.QuantTier())
	}
	if e.Mem != nil {
		return fmt.Errorf("llm: tensor parallelism does not compose with a memory host")
	}
	if cfg.Heads%ways != 0 || cfg.KVHeads%ways != 0 {
		return fmt.Errorf("llm: %d query / %d KV heads not divisible by %d ways", cfg.Heads, cfg.KVHeads, ways)
	}
	if cfg.DFF%ways != 0 || cfg.DModel%ways != 0 {
		return fmt.Errorf("llm: DFF %d / DModel %d not divisible by %d ways", cfg.DFF, cfg.DModel, ways)
	}
	tp := &tpState{ways: ways, peer: peer, layers: make([]tpLayer, len(e.Model.Layers))}
	for li, w := range e.Model.Layers {
		tp.layers[li] = tpLayer{
			qkv: shardQKV(w.WQKV, cfg, ways),
			out: shardCols(w.WOut, ways),
			fc1: shardFC1(w.WFC1, cfg, ways),
			fc2: shardCols(w.WFC2, ways),
		}
	}
	e.tp = tp
	return nil
}

// TP reports whether tensor-parallel mode is on.
func (e *Executor) TP() bool { return e.tp != nil }

// TPWays returns the shard count (0 when TP is off).
func (e *Executor) TPWays() int {
	if e.tp == nil {
		return 0
	}
	return e.tp.ways
}

// TPStats returns the virtual communication ledger, aggregated across
// every fork of the executor family.
func (e *Executor) TPStats() TPStats {
	if e.tp == nil {
		return TPStats{}
	}
	return TPStats{
		Ways:       e.tp.ways,
		AllReduces: e.tp.allReduces.Load(),
		Comm:       units.Seconds(float64(e.tp.commPs.Load()) * 1e-12),
	}
}

// materializeShard copies the listed column spans of w into one matrix,
// in span order.
func materializeShard(w tensor.Matrix, spans []colSpan) tpShard {
	width := 0
	for _, sp := range spans {
		width += sp.width
	}
	m := tensor.New(w.Rows, width)
	for r := 0; r < w.Rows; r++ {
		src := w.Row(r)
		dst := m.Row(r)
		off := 0
		for _, sp := range spans {
			copy(dst[off:off+sp.width], src[sp.dst:sp.dst+sp.width])
			off += sp.width
		}
	}
	return tpShard{w: m, spans: spans}
}

// shardCols splits a matrix into `ways` contiguous column slices — the
// out-projection and FC2 sharding (column-parallel over the model
// width).
func shardCols(w tensor.Matrix, ways int) tpSublayer {
	per := w.Cols / ways
	sub := tpSublayer{fullN: w.Cols, shards: make([]tpShard, ways)}
	for s := 0; s < ways; s++ {
		width := per
		if s == ways-1 {
			width = w.Cols - s*per // absorb any remainder (none when ways divides)
		}
		sub.shards[s] = materializeShard(w, []colSpan{{dst: s * per, width: width}})
	}
	return sub
}

// shardQKV splits the fused QKV projection by attention heads: rank s
// owns query heads [s·H/w, (s+1)·H/w) and the matching KV heads, so its
// shard is up to three column ranges of the fused matrix (Q, K, V
// segments).
func shardQKV(w tensor.Matrix, cfg model.Config, ways int) tpSublayer {
	d := cfg.DModel
	dh := cfg.HeadDim()
	kvDim := cfg.KVDim()
	qPer := cfg.Heads / ways * dh
	kvPer := cfg.KVHeads / ways * dh
	sub := tpSublayer{fullN: w.Cols, shards: make([]tpShard, ways)}
	for s := 0; s < ways; s++ {
		spans := []colSpan{
			{dst: s * qPer, width: qPer},             // query heads
			{dst: d + s*kvPer, width: kvPer},         // key heads
			{dst: d + kvDim + s*kvPer, width: kvPer}, // value heads
		}
		sub.shards[s] = materializeShard(w, spans)
	}
	return sub
}

// shardFC1 splits FC1 over the FFN hidden width. Gated models pair each
// rank's gate columns with its up columns so the elementwise SwiGLU
// stays rank-local in a real deployment; here the gather reassembles the
// full h1 before the activation, which computes the identical values.
func shardFC1(w tensor.Matrix, cfg model.Config, ways int) tpSublayer {
	per := cfg.DFF / ways
	sub := tpSublayer{fullN: w.Cols, shards: make([]tpShard, ways)}
	for s := 0; s < ways; s++ {
		spans := []colSpan{{dst: s * per, width: per}}
		if cfg.GatedFFN {
			spans = append(spans, colSpan{dst: cfg.DFF + s*per, width: per})
		}
		sub.shards[s] = materializeShard(w, spans)
	}
	return sub
}

// linearTP is linear()'s tensor-parallel body: each rank's shard runs
// through the same policy-routed kernel the unsharded path uses, and the
// rank outputs are gathered (concatenated) back into the full output
// matrix. After the two residual-producing projections the virtual comm
// clock charges the analytic ring all-reduce on the hidden states.
func (e *Executor) linearTP(li int, s model.Sublayer, x tensor.Matrix) tensor.Matrix {
	tp := e.tp
	l := &tp.layers[li]
	var sub *tpSublayer
	switch s {
	case model.QKVMapping:
		sub = &l.qkv
	case model.OutProjection:
		sub = &l.out
	case model.FC1:
		sub = &l.fc1
	case model.FC2:
		sub = &l.fc2
	default:
		panic(fmt.Sprintf("llm: %s is not a parameter sublayer", s))
	}
	out := tensor.New(x.Rows, sub.fullN)
	for si := range sub.shards {
		sh := &sub.shards[si]
		part := e.runTPShard(s, sh, x)
		off := 0
		for _, sp := range sh.spans {
			for r := 0; r < part.Rows; r++ {
				copy(out.Row(r)[sp.dst:sp.dst+sp.width], part.Row(r)[off:off+sp.width])
			}
			off += sp.width
		}
	}
	if s == model.OutProjection || s == model.FC2 {
		bytes := units.Bytes(x.Rows * e.Model.Cfg.DModel * e.Model.Cfg.BytesPerParam)
		t := core.TPAllReduceTime(tp.ways, tp.peer, bytes)
		tp.allReduces.Add(1)
		tp.commPs.Add(int64(float64(t) * 1e12))
	}
	return out
}

// runTPShard dispatches one rank's shard through the policy-routed
// kernel — the exact dense-tier body of linear(), against the shard's
// own packed cache. The dense route's in-place bfloat16 rounding of x is
// idempotent, so repeating it per rank leaves later ranks' inputs
// identical to the unsharded call's.
func (e *Executor) runTPShard(s model.Sublayer, sh *tpShard, x tensor.Matrix) tensor.Matrix {
	if x.Cols != sh.w.Rows {
		panic(fmt.Sprintf("llm: %s TP shard shape mismatch %dx%d · %dx%d", s, x.Rows, x.Cols, sh.w.Rows, sh.w.Cols))
	}
	if e.Policy.OnCPU(s) {
		sh.cache.cpuOnce.Do(func() {
			pre, err := amx.PrepackBF16(sh.w.Data, sh.w.Rows, sh.w.Cols)
			if err != nil {
				panic(fmt.Sprintf("llm: TP prepack %s: %v", s, err))
			}
			sh.cache.cpu = pre
			e.sharedState().packs.Add(1)
		})
		out, cycles, err := amx.MatmulBF16Packed(x.Data, x.Rows, sh.cache.cpu)
		if err != nil {
			panic(fmt.Sprintf("llm: TP AMX matmul: %v", err))
		}
		e.Stats.CPUMatmuls++
		e.Stats.AMXCycles += cycles
		return tensor.FromSlice(x.Rows, sh.w.Cols, out)
	}
	sh.cache.gpuOnce.Do(func() {
		g := sh.w.Clone()
		amx.RoundSlice(g.Data)
		sh.cache.gpu = g
		e.sharedState().packs.Add(1)
	})
	e.Stats.GPUMatmuls++
	amx.RoundSlice(x.Data)
	return tensor.MatMul(x, sh.cache.gpu)
}
