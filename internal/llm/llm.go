// Package llm is a functional decoder-only transformer — real float32/
// bfloat16 math, KV cache, greedy decoding — with the same six-sublayer
// decoder structure the analytical model assumes (Figure 1/6). Each
// GEMM/GEMV sublayer is routed by an offloading policy: CPU-assigned
// sublayers execute through the emulated AMX tile pipeline (package amx),
// GPU-assigned ones through the plain dense kernels (package tensor).
//
// Its purpose in the reproduction is evidence that LIA's dataflow —
// including cross-device KV-cache handling and per-sublayer device splits
// — is executable end to end, and that the offloading decision never
// changes the computed tokens (the policy-invariance property the paper's
// correctness implicitly rests on). The executor mirrors what LIA's §5
// kernels amortize: static weights are packed (VNNI image + decoded view
// for amx's fast-path TMUL tier) or rounded (BF16) once per executor and
// the KV cache grows in place, so the steady-state decode loop is free of
// repacking, of quadratic copying, and of per-multiply operand decoding.
package llm

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"github.com/lia-sim/lia/internal/amx"
	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/quant"
	"github.com/lia-sim/lia/internal/runner"
	"github.com/lia-sim/lia/internal/tensor"
)

// LayerWeights holds one decoder layer's parameters.
type LayerWeights struct {
	// LN1 and LN2 are the pre-attention and pre-FFN layer norms.
	LN1Gain, LN1Bias []float32
	LN2Gain, LN2Bias []float32
	// WQKV maps d → 3d (query, key, value fused); BQKV is its bias.
	WQKV tensor.Matrix
	BQKV []float32
	// WOut maps d → d with bias BOut.
	WOut tensor.Matrix
	BOut []float32
	// WFC1 maps d → dff, WFC2 maps dff → d.
	WFC1 tensor.Matrix
	BFC1 []float32
	WFC2 tensor.Matrix
	BFC2 []float32
}

// Model is a runnable transformer.
type Model struct {
	// Cfg describes the architecture (use TinyConfig for tests).
	Cfg model.Config
	// Embed is the token embedding (vocab × d), tied as the LM head.
	Embed tensor.Matrix
	// Pos is the learned positional embedding (maxSeq × d).
	Pos tensor.Matrix
	// Layers holds the decoder stack.
	Layers []LayerWeights
	// FinalGain and FinalBias are the final layer norm.
	FinalGain, FinalBias []float32
}

// TinyConfig returns a laptop-scale architecture with the same structure
// as the OPT family, for functional runs.
func TinyConfig() model.Config {
	return model.Config{
		Name: "tiny-opt", Layers: 2, DModel: 64, Heads: 4, KVHeads: 4,
		DFF: 256, VocabSize: 101, MaxSeqLen: 128, BytesPerParam: 2, Experts: 1,
	}
}

// NewRandom builds a model with deterministic, well-scaled random
// weights — the dummy-weight setup the paper's artifact uses (§A.5).
func NewRandom(cfg model.Config, seed int64) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.VocabSize <= 0 || cfg.MaxSeqLen <= 0 {
		return nil, fmt.Errorf("llm: config needs vocab and max sequence length")
	}
	rng := rand.New(rand.NewSource(seed))
	d, dff := cfg.DModel, cfg.DFF
	scale := float32(0.02)
	randMat := func(r, c int) tensor.Matrix {
		m := tensor.New(r, c)
		for i := range m.Data {
			m.Data[i] = float32(rng.NormFloat64()) * scale
		}
		return m
	}
	ones := func(n int) []float32 {
		v := make([]float32, n)
		for i := range v {
			v[i] = 1
		}
		return v
	}
	zeros := func(n int) []float32 { return make([]float32, n) }

	// Grouped-query attention shrinks the K/V projections; a gated FFN
	// doubles FC1 (gate + up).
	kvDim := cfg.KVDim()
	qkvWidth := d + 2*kvDim
	fc1Width := dff
	if cfg.GatedFFN {
		fc1Width = 2 * dff
	}
	m := &Model{
		Cfg:       cfg,
		Embed:     randMat(cfg.VocabSize, d),
		Pos:       randMat(cfg.MaxSeqLen, d),
		FinalGain: ones(d),
		FinalBias: zeros(d),
	}
	for i := 0; i < cfg.Layers; i++ {
		m.Layers = append(m.Layers, LayerWeights{
			LN1Gain: ones(d), LN1Bias: zeros(d),
			LN2Gain: ones(d), LN2Bias: zeros(d),
			WQKV: randMat(d, qkvWidth), BQKV: zeros(qkvWidth),
			WOut: randMat(d, d), BOut: zeros(d),
			WFC1: randMat(d, fc1Width), BFC1: zeros(fc1Width),
			WFC2: randMat(dff, d), BFC2: zeros(d),
		})
	}
	return m, nil
}

// KVCache stores per-layer key and value matrices, preallocated to the
// model's maximum sequence length and grown row-wise in place as decoding
// proceeds (the seed implementation re-copied the whole cache every step
// via Concat — quadratic in context length).
type KVCache struct {
	// K and V are indexed by layer; each is (seen × KVDim), a view over a
	// backing array with MaxSeqLen rows of capacity.
	K, V []tensor.Matrix
	// kT mirrors K transposed: kT[li] is (KVDim × capRows) whose first
	// Len() columns are valid. It is updated incrementally on Append so
	// attention never re-materializes Kᵀ from scratch.
	kT []tensor.Matrix
	// capRows is the backing capacity in rows.
	capRows int
	// id identifies the cache to a MemHost (0 when no host is attached).
	id int64
}

// ID returns the cache's MemHost identifier (0 without a host).
func (c *KVCache) ID() int64 { return c.id }

// Len returns the cached context length.
func (c *KVCache) Len() int {
	if len(c.K) == 0 {
		return 0
	}
	return c.K[0].Rows
}

// Append adds freshly projected K/V rows for layer li, writing the key
// values into the transposed mirror as columns. Rows land in place; the
// executor's position checks guarantee the capacity is never exceeded.
func (c *KVCache) Append(li int, k, v tensor.Matrix) {
	past := c.K[li].Rows
	c.K[li] = c.K[li].AppendRows(k)
	c.V[li] = c.V[li].AppendRows(v)
	kt := c.kT[li]
	for r := 0; r < k.Rows; r++ {
		row := k.Row(r)
		for col, val := range row {
			kt.Data[col*c.capRows+past+r] = val
		}
	}
}

// Stats counts what the executor did — tests use it to prove routing.
type Stats struct {
	// CPUMatmuls and GPUMatmuls count kernel dispatches per device.
	CPUMatmuls, GPUMatmuls int
	// Int8Matmuls counts quantized (TDPBUSD) dispatches.
	Int8Matmuls int
	// SparseMatmuls counts dispatches through a sparse-bitmap AMX image,
	// and SparseBlocksSkipped the zero tile blocks those dispatches elided
	// (per weight pass, independent of the activation row count).
	SparseMatmuls       int
	SparseBlocksSkipped uint64
	// Int4Matmuls counts INT4 LUT-GEMV dispatches.
	Int4Matmuls int
	// AMXCycles accumulates emulated tile-pipeline cycles.
	AMXCycles uint64
}

// add merges another executor's counters (used when batch sequences run
// on forked executors).
func (s *Stats) add(o Stats) {
	s.CPUMatmuls += o.CPUMatmuls
	s.GPUMatmuls += o.GPUMatmuls
	s.Int8Matmuls += o.Int8Matmuls
	s.SparseMatmuls += o.SparseMatmuls
	s.SparseBlocksSkipped += o.SparseBlocksSkipped
	s.Int4Matmuls += o.Int4Matmuls
	s.AMXCycles += o.AMXCycles
}

// quantizedLayer caches one decoder layer's INT8 parameter matrices.
type quantizedLayer struct {
	wQKV, wOut, wFC1, wFC2 quant.Weights
}

// packedWeight caches the two static-layout conversions of one parameter
// matrix: the prepacked AMX operand (VNNI tile image plus the decoded
// column-major view amx's fast-path TMUL tier reads, both built by one
// PrepackBF16 call) and the BF16-rounded copy for the dense (GPU) route.
// Each is built at most once per executor — the per-weight cost a real
// AMX kernel amortizes — and is immutable afterwards, so batch sequences
// share it concurrently.
type packedWeight struct {
	cpuOnce sync.Once
	cpu     *amx.Prepacked
	gpuOnce sync.Once
	gpu     tensor.Matrix
}

// layerWeightCache holds the packed forms of one layer's four parameter
// sublayers.
type layerWeightCache struct {
	qkv, out, fc1, fc2 packedWeight
}

// sharedState is the executor state that forked batch sequences reuse
// concurrently: lazily-built weight caches, the RoPE angle tables, and
// the pack-count instrumentation.
type sharedState struct {
	packed []layerWeightCache
	// packs counts static-weight layout conversions (VNNI packs plus
	// BF16 roundings); tests assert it stays bounded by the weight count
	// no matter how many tokens are generated.
	packs atomic.Int64

	// cacheIDs issues MemHost cache identifiers, unique across every fork
	// of the executor family (IDs start at 1; 0 means "no host").
	cacheIDs atomic.Int64

	ropeOnce sync.Once
	// ropeSin/ropeCos hold sin/cos of pos·base^(-2i/d_h) for every
	// (position, pair) — float64, exactly the values math.Sincos returns
	// inside the reference applyRoPE, so the cached rotation is
	// bit-identical. Row-major by position with stride d_h/2.
	ropeSin, ropeCos []float64
}

// Executor runs a model under an offloading policy.
type Executor struct {
	// Model is the network to run.
	Model *Model
	// Policy routes each sublayer to the AMX (CPU) or dense (GPU) kernels.
	Policy core.Policy
	// Stats accumulates dispatch counters.
	Stats Stats
	// Mem, when non-nil, observes the executor's memory traffic (weight
	// packs, KV-cache lifetime, per-pass access order) — the attachment
	// point for the tiered offload runtime. Hooks are observational only:
	// tokens are bit-identical with or without a host. Set it before the
	// first pass, not concurrently with generation.
	Mem MemHost
	// pass holds the active pass's hooks; a fork runs one pass at a time
	// on one goroutine, so no synchronization is needed.
	pass PassHooks
	// int8 holds pre-quantized parameter weights when INT8 mode is on;
	// sparse and int4 hold the block-sparse and INT4-LUT tiers (at most
	// one of the three is non-nil — Enable* clears the others).
	// sparseInt8 marks the int8 tier as the block-pruned variant whose
	// prepacked image carries a zero-block bitmap (EnableSparseINT8).
	int8       []quantizedLayer
	sparseInt8 bool
	sparse     []sparseLayer
	int4       []int4Layer
	// tp holds the tensor-parallel sharding when EnableTP is on
	// (mutually exclusive with the compressed tiers).
	tp *tpState
	// shared holds the packed-weight caches and RoPE tables, common to
	// every fork of this executor.
	shared *sharedState
	// khT, qhBuf and vhBuf are per-sequence scratch for the per-head
	// operands staged each attention step (key transpose, query slice,
	// value slice); staging into reused buffers keeps the decode loop off
	// the allocator.
	khT, qhBuf, vhBuf []float32
}

// NewExecutor wires a model to a policy.
func NewExecutor(m *Model, p core.Policy) *Executor {
	return &Executor{Model: m, Policy: p, shared: &sharedState{packed: make([]layerWeightCache, len(m.Layers))}}
}

// sharedState returns the fork-shared state, creating it for executors
// built as bare struct literals.
func (e *Executor) sharedState() *sharedState {
	if e.shared == nil {
		e.shared = &sharedState{packed: make([]layerWeightCache, len(e.Model.Layers))}
	}
	return e.shared
}

// fork returns a child executor sharing the model, packed-weight caches
// and quantized weights, with private Stats and scratch — the unit of
// parallelism for GenerateBatch.
func (e *Executor) fork() *Executor {
	return &Executor{Model: e.Model, Policy: e.Policy, Mem: e.Mem, int8: e.int8, sparseInt8: e.sparseInt8, sparse: e.sparse, int4: e.int4, tp: e.tp, shared: e.sharedState()}
}

// WeightPacks reports how many static-weight layout conversions (VNNI
// packs + BF16 roundings) the executor has performed. It is bounded by
// the number of distinct (layer, sublayer, route) combinations, never by
// the number of tokens generated.
func (e *Executor) WeightPacks() int64 { return e.sharedState().packs.Load() }

// EnableINT8 quantizes every parameter-sublayer weight matrix to INT8
// with per-output-channel scales (and prepacks them into the VNNI tile
// layout, once); subsequent forward passes run those sublayers through
// the AMX TDPBUSD pipeline (W8A8). Attention scoring (the KV cache) stays
// BF16, matching the §6 observation that it is the precision- and
// bandwidth-sensitive path.
func (e *Executor) EnableINT8() {
	e.sparse = nil
	e.int4 = nil
	e.tp = nil
	e.sparseInt8 = false
	e.int8 = make([]quantizedLayer, len(e.Model.Layers))
	for i, w := range e.Model.Layers {
		e.int8[i] = quantizedLayer{
			wQKV: quant.QuantizeWeights(w.WQKV),
			wOut: quant.QuantizeWeights(w.WOut),
			wFC1: quant.QuantizeWeights(w.WFC1),
			wFC2: quant.QuantizeWeights(w.WFC2),
		}
	}
}

// INT8 reports whether quantized mode is on.
func (e *Executor) INT8() bool { return e.int8 != nil }

// weightFor maps a parameter sublayer to its weight matrix and cache slot.
func (e *Executor) weightFor(li int, s model.Sublayer) (tensor.Matrix, *packedWeight) {
	w := &e.Model.Layers[li]
	c := &e.sharedState().packed[li]
	switch s {
	case model.QKVMapping:
		return w.WQKV, &c.qkv
	case model.OutProjection:
		return w.WOut, &c.out
	case model.FC1:
		return w.WFC1, &c.fc1
	case model.FC2:
		return w.WFC2, &c.fc2
	}
	panic(fmt.Sprintf("llm: %s is not a parameter sublayer", s))
}

// linear computes x·W for a parameter sublayer of layer li, through the
// INT8 pipeline when enabled, else through the policy-routed BF16 path
// with the per-executor packed/rounded weight cache. x must be freshly
// computed by the caller (the dense route rounds it to bfloat16 in
// place, exactly the rounding the seed applied to a clone).
func (e *Executor) linear(li int, s model.Sublayer, x tensor.Matrix) tensor.Matrix {
	if e.pass != nil {
		e.pass.WeightAccess(li, s)
	}
	if e.tp != nil {
		return e.linearTP(li, s, x)
	}
	if e.int8 != nil {
		q := &e.int8[li]
		var qw *quant.Weights
		switch s {
		case model.QKVMapping:
			qw = &q.wQKV
		case model.OutProjection:
			qw = &q.wOut
		case model.FC1:
			qw = &q.wFC1
		case model.FC2:
			qw = &q.wFC2
		}
		if qw != nil {
			out, cycles, err := quant.Linear(x, *qw)
			if err != nil {
				panic(fmt.Sprintf("llm: int8 linear: %v", err))
			}
			e.Stats.Int8Matmuls++
			e.Stats.AMXCycles += cycles
			if e.sparseInt8 {
				nz, total := qw.BlockStats()
				e.Stats.SparseMatmuls++
				e.Stats.SparseBlocksSkipped += uint64(total - nz)
			}
			return out
		}
	}
	if e.int4 != nil {
		return e.linearINT4(li, s, x)
	}
	if e.sparse != nil {
		return e.linearSparse(li, s, x)
	}
	w, cached := e.weightFor(li, s)
	if x.Cols != w.Rows {
		panic(fmt.Sprintf("llm: %s matmul shape mismatch %dx%d · %dx%d", s, x.Rows, x.Cols, w.Rows, w.Cols))
	}
	if e.Policy.OnCPU(s) {
		cached.cpuOnce.Do(func() {
			pre, err := amx.PrepackBF16(w.Data, w.Rows, w.Cols)
			if err != nil {
				panic(fmt.Sprintf("llm: prepack %s: %v", s, err))
			}
			cached.cpu = pre
			e.sharedState().packs.Add(1)
			if e.pass != nil {
				e.pass.WeightPacked(li, s)
			}
		})
		out, cycles, err := amx.MatmulBF16Packed(x.Data, x.Rows, cached.cpu)
		if err != nil {
			panic(fmt.Sprintf("llm: AMX matmul: %v", err))
		}
		e.Stats.CPUMatmuls++
		e.Stats.AMXCycles += cycles
		return tensor.FromSlice(x.Rows, w.Cols, out)
	}
	cached.gpuOnce.Do(func() {
		g := w.Clone()
		amx.RoundSlice(g.Data)
		cached.gpu = g
		e.sharedState().packs.Add(1)
		if e.pass != nil {
			e.pass.WeightPacked(li, s)
		}
	})
	e.Stats.GPUMatmuls++
	amx.RoundSlice(x.Data)
	return tensor.MatMul(x, cached.gpu)
}

// matmul dispatches C = A·B for the attention sublayers, whose operands
// both change every step: the emulated AMX tile pipeline when the policy
// places the sublayer on the CPU, the dense kernel (with the same BF16
// input rounding a GPU tensor core applies) otherwise. Both operands must
// be freshly materialized per call — the dense route rounds them in place.
func (e *Executor) matmul(s model.Sublayer, a, b tensor.Matrix) tensor.Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("llm: %s matmul shape mismatch %dx%d · %dx%d", s, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if e.Policy.OnCPU(s) {
		out, cycles, err := amx.MatmulBF16(a.Data, b.Data, a.Rows, a.Cols, b.Cols)
		if err != nil {
			panic(fmt.Sprintf("llm: AMX matmul: %v", err))
		}
		e.Stats.CPUMatmuls++
		e.Stats.AMXCycles += cycles
		return tensor.FromSlice(a.Rows, b.Cols, out)
	}
	e.Stats.GPUMatmuls++
	amx.RoundSlice(a.Data)
	amx.RoundSlice(b.Data)
	return tensor.MatMul(a, b)
}

// forwardLayer runs one decoder layer over the hidden states x
// (rows × d), reading `past` cached positions and appending the new K/V
// rows to the cache. mask enables causal masking (prefill).
func (e *Executor) forwardLayer(li int, x tensor.Matrix, cache *KVCache, mask bool) tensor.Matrix {
	if e.pass != nil {
		e.pass.LayerStart(li)
	}
	cfg := e.Model.Cfg
	w := e.Model.Layers[li]
	d := cfg.DModel
	nh := cfg.Heads
	dh := cfg.HeadDim()
	kvDim := cfg.KVDim()
	groups := nh / cfg.KVHeads // query heads per KV head (1 for MHA)

	// Sublayer 1: QKV mapping (pre-LN fused in).
	normed := tensor.LayerNorm(x, w.LN1Gain, w.LN1Bias, 1e-5)
	qkv := tensor.AddBias(e.linear(li, model.QKVMapping, normed), w.BQKV)
	q := qkv.SliceCols(0, d)
	k := qkv.SliceCols(d, d+kvDim)
	v := qkv.SliceCols(d+kvDim, d+2*kvDim)

	// Rotary embeddings rotate the fresh queries and keys by their
	// absolute positions before the keys are cached (Llama-family models).
	past := cache.K[li].Rows
	if cfg.RoPE {
		e.applyRoPECached(q, dh, past)
		e.applyRoPECached(k, dh, past)
	}
	cache.Append(li, k, v)
	fullK := cache.K[li]
	fullV := cache.V[li]
	seen := fullK.Rows
	if e.pass != nil {
		e.pass.KVWrite(li, k.Rows)
		e.pass.KVRead(li, seen)
	}

	// Sublayers 2+3, fused per KV head: the `groups` query heads sharing
	// one KV head stack vertically into a single (groups·rows × dh)
	// operand, so Q·Kᵀ and probs·V each dispatch once per KV head instead
	// of once per query head (2·KVHeads attention GEMMs per layer). Every
	// kernel on this path computes each output row from its own input row
	// — the AMX tile blocks zero-pad, the dense route rounds elementwise
	// and dots row-by-row — so the stacked results are bit-identical to
	// the per-head dispatches they replace.
	ctx := tensor.New(x.Rows, d)
	invSqrt := float32(1 / math.Sqrt(float64(dh)))
	if cap(e.khT) < dh*seen {
		e.khT = make([]float32, dh*cache.capRows)
	}
	if cap(e.qhBuf) < groups*x.Rows*dh {
		e.qhBuf = make([]float32, groups*x.Rows*dh)
	}
	if cap(e.vhBuf) < seen*dh {
		e.vhBuf = make([]float32, cache.capRows*dh)
	}
	for kvHead := 0; kvHead < cfg.KVHeads; kvHead++ {
		// Stage the group's query slices into scratch, stacked by head
		// (copies are required regardless because the dense route rounds
		// operands in place and q/fullV must stay pristine).
		qh := tensor.FromSlice(groups*x.Rows, dh, e.qhBuf[:groups*x.Rows*dh])
		for g := 0; g < groups; g++ {
			h := kvHead*groups + g
			for r := 0; r < x.Rows; r++ {
				copy(qh.Row(g*x.Rows+r), q.Row(r)[h*dh:(h+1)*dh])
			}
		}
		vh := tensor.FromSlice(seen, dh, e.vhBuf[:seen*dh])
		for r := 0; r < seen; r++ {
			copy(vh.Row(r), fullV.Row(r)[kvHead*dh:(kvHead+1)*dh])
		}

		// Q·Kᵀ through the policy-routed kernel. The transpose is staged
		// from the cache's incrementally-updated mirror (scratch-backed,
		// rebuilt per KV head because the dense route rounds it in place).
		khT := tensor.FromSlice(dh, seen, e.khT[:dh*seen])
		kt := cache.kT[li]
		for i := 0; i < dh; i++ {
			copy(khT.Row(i), kt.Row(kvHead*dh + i)[:seen])
		}
		scores := tensor.Scale(e.matmul(model.QKT, qh, khT), invSqrt)
		if mask {
			// Row g·rows+r of the stacked scores is query position past+r
			// of head g, so the causal mask applies per sub-block — the
			// stacked row index must not leak into the diagonal offset.
			for g := 0; g < groups; g++ {
				sub := tensor.FromSlice(x.Rows, seen, scores.Data[g*x.Rows*seen:(g+1)*x.Rows*seen])
				tensor.CausalMask(sub, past)
			}
		}
		tensor.SoftmaxRows(scores)
		ctxH := e.matmul(model.SV, scores, vh)
		for g := 0; g < groups; g++ {
			h := kvHead*groups + g
			for r := 0; r < ctx.Rows; r++ {
				copy(ctx.Row(r)[h*dh:(h+1)*dh], ctxH.Row(g*x.Rows+r))
			}
		}
	}

	// Sublayer 4: output projection + residual.
	attnOut := tensor.AddBias(e.linear(li, model.OutProjection, ctx), w.BOut)
	x = tensor.Add(x, attnOut)

	// Sublayers 5+6: FFN (pre-LN fused) with the architecture's
	// activation — SwiGLU gating for gated models, ReLU for OPT — then
	// the residual.
	normed2 := tensor.LayerNorm(x, w.LN2Gain, w.LN2Bias, 1e-5)
	h1 := tensor.AddBias(e.linear(li, model.FC1, normed2), w.BFC1)
	if cfg.GatedFFN {
		gate := tensor.SiLU(h1.SliceCols(0, cfg.DFF))
		up := h1.SliceCols(cfg.DFF, 2*cfg.DFF)
		h1 = tensor.MulElem(gate, up)
	} else {
		h1 = tensor.ReLU(h1)
	}
	h2 := tensor.AddBias(e.linear(li, model.FC2, h1), w.BFC2)
	return tensor.Add(x, h2)
}

// embed builds the hidden states for token IDs starting at position pos.
func (e *Executor) embed(tokens []int, pos int) (tensor.Matrix, error) {
	x := tensor.New(len(tokens), e.Model.Cfg.DModel)
	for i, tok := range tokens {
		if err := e.embedRow(x.Row(i), tok, pos+i); err != nil {
			return tensor.Matrix{}, err
		}
	}
	return x, nil
}

// embedRow writes one token's embedding at absolute position pos into
// dst (length DModel) — the row primitive embed and the fused decode
// round share.
func (e *Executor) embedRow(dst []float32, tok, pos int) error {
	cfg := e.Model.Cfg
	if tok < 0 || tok >= cfg.VocabSize {
		return fmt.Errorf("llm: token %d outside vocabulary [0, %d)", tok, cfg.VocabSize)
	}
	if pos >= cfg.MaxSeqLen {
		return fmt.Errorf("llm: position %d exceeds max sequence length %d", pos, cfg.MaxSeqLen)
	}
	copy(dst, e.Model.Embed.Row(tok))
	if !cfg.RoPE {
		for c, pv := range e.Model.Pos.Row(pos) {
			dst[c] += pv
		}
	}
	return nil
}

// logits projects hidden states onto the (tied) vocabulary.
func (e *Executor) logits(x tensor.Matrix) tensor.Matrix {
	normed := tensor.LayerNorm(x, e.Model.FinalGain, e.Model.FinalBias, 1e-5)
	return tensor.MatMulT(normed, e.Model.Embed)
}

// NewCache returns an empty KV cache for the model, preallocated to
// MaxSeqLen rows per layer so decode-time appends never reallocate or
// copy existing entries.
func (e *Executor) NewCache() *KVCache {
	kvDim := e.Model.Cfg.KVDim()
	capRows := e.Model.Cfg.MaxSeqLen
	c := &KVCache{capRows: capRows}
	for range e.Model.Layers {
		c.K = append(c.K, tensor.NewWithCap(0, kvDim, capRows))
		c.V = append(c.V, tensor.NewWithCap(0, kvDim, capRows))
		c.kT = append(c.kT, tensor.New(kvDim, capRows))
	}
	if e.Mem != nil {
		c.id = e.sharedState().cacheIDs.Add(1)
		e.Mem.CacheCreated(c.id, capRows)
	}
	return c
}

// RetireCache tells the attached MemHost the cache's storage can be
// reclaimed. Callers driving Prefill/DecodeStep directly own the cache
// lifetime; Generate and Sequence retire theirs automatically. Safe to
// call without a host, and idempotent on the host side.
func (e *Executor) RetireCache(c *KVCache) {
	if e.Mem != nil && c != nil && c.id != 0 {
		e.Mem.CacheRetired(c.id)
	}
}

// beginPass opens a MemHost observation window for one forward pass.
func (e *Executor) beginPass(cache *KVCache, stage model.Stage, rows, past int) {
	if e.Mem != nil {
		e.pass = e.Mem.BeginPass(cache.id, stage, rows, past)
	}
}

// endPass closes the observation window opened by beginPass.
func (e *Executor) endPass() {
	if e.pass != nil {
		e.pass.EndPass()
		e.pass = nil
	}
}

// Prefill runs the Sum stage over a prompt, returning the logits of its
// last position and the populated KV cache.
func (e *Executor) Prefill(prompt []int) (tensor.Matrix, *KVCache, error) {
	if len(prompt) == 0 {
		return tensor.Matrix{}, nil, fmt.Errorf("llm: empty prompt")
	}
	x, err := e.embed(prompt, 0)
	if err != nil {
		return tensor.Matrix{}, nil, err
	}
	cache := e.NewCache()
	e.beginPass(cache, model.Prefill, len(prompt), 0)
	for li := range e.Model.Layers {
		x = e.forwardLayer(li, x, cache, true)
	}
	e.endPass()
	return e.logits(x), cache, nil
}

// DecodeStep runs the Gen stage for one token, extending the cache.
func (e *Executor) DecodeStep(cache *KVCache, token int) (tensor.Matrix, error) {
	past := cache.Len()
	x, err := e.embed([]int{token}, past)
	if err != nil {
		return tensor.Matrix{}, err
	}
	e.beginPass(cache, model.Decode, 1, past)
	for li := range e.Model.Layers {
		x = e.forwardLayer(li, x, cache, false)
	}
	e.endPass()
	return e.logits(x), nil
}

// Generate greedily decodes n tokens after the prompt.
func (e *Executor) Generate(prompt []int, n int) ([]int, error) {
	logits, cache, err := e.Prefill(prompt)
	if err != nil {
		return nil, err
	}
	defer e.RetireCache(cache)
	out := make([]int, 0, n)
	next := logits.ArgmaxRow(logits.Rows - 1)
	for i := 0; i < n; i++ {
		out = append(out, next)
		if i == n-1 {
			break
		}
		step, err := e.DecodeStep(cache, next)
		if err != nil {
			return nil, err
		}
		next = step.ArgmaxRow(0)
	}
	return out, nil
}

// TinyLlamaConfig returns a laptop-scale architecture with Llama2's
// structural features: grouped-query attention (2 KV heads for 4 query
// heads) and a SwiGLU gated FFN.
func TinyLlamaConfig() model.Config {
	return model.Config{
		Name: "tiny-llama", Layers: 2, DModel: 64, Heads: 4, KVHeads: 2,
		DFF: 96, VocabSize: 101, MaxSeqLen: 128, BytesPerParam: 2,
		GatedFFN: true, RoPE: true, Experts: 1,
	}
}

// GenerateBatch greedily decodes n tokens for each prompt, sharing the
// model weights and packed-weight caches across the batch (each sequence
// keeps its own KV cache, like the per-request caches of §2.1). Results
// align with prompts and are bit-identical to sequential generation. Call
// EnableINT8 (if wanted) before GenerateBatch, not concurrently with it.
//
// On the BF16 path without a memory host, decode rounds run through the
// cross-sequence batched GEMM (StepBatchFused): the batch's parameter
// sublayers stack into one matmul per sublayer while attention runs
// per-sequence in parallel. INT8 and hosted runs keep the fully
// per-sequence parallel path. Tokens are bit-identical either way.
func (e *Executor) GenerateBatch(prompts [][]int, n int) ([][]int, error) {
	if len(prompts) == 0 {
		return nil, fmt.Errorf("llm: empty batch")
	}
	if e.int8 == nil && e.Mem == nil && len(prompts) > 1 {
		return e.GenerateBatchFused(prompts, n)
	}
	type seqResult struct {
		tokens []int
		stats  Stats
	}
	results, err := runner.Map(context.Background(), prompts, func(_ context.Context, prompt []int) (seqResult, error) {
		sub := e.fork()
		tokens, err := sub.Generate(prompt, n)
		if err != nil {
			return seqResult{}, err
		}
		return seqResult{tokens: tokens, stats: sub.Stats}, nil
	})
	if err != nil {
		return nil, fmt.Errorf("llm: %w", err)
	}
	out := make([][]int, len(prompts))
	for i, r := range results {
		out[i] = r.tokens
		e.Stats.add(r.stats)
	}
	return out, nil
}

// ropeTables returns the executor's precomputed rotation tables, building
// them on first use (once per executor; the seed recomputed
// math.Pow + math.Sincos per element per step).
func (e *Executor) ropeTables() (sin, cos []float64) {
	sh := e.sharedState()
	sh.ropeOnce.Do(func() {
		const base = 10000.0
		cfg := e.Model.Cfg
		dh := cfg.HeadDim()
		half := dh / 2
		sh.ropeSin = make([]float64, cfg.MaxSeqLen*half)
		sh.ropeCos = make([]float64, cfg.MaxSeqLen*half)
		for pos := 0; pos < cfg.MaxSeqLen; pos++ {
			for i := 0; i < half; i++ {
				theta := float64(pos) * math.Pow(base, -2*float64(i)/float64(dh))
				s, c := math.Sincos(theta)
				sh.ropeSin[pos*half+i] = s
				sh.ropeCos[pos*half+i] = c
			}
		}
	})
	return sh.ropeSin, sh.ropeCos
}

// applyRoPECached rotates each row's per-head (even, odd) pairs by the
// row's absolute position using the precomputed tables. The angles (and
// therefore the rotated values) are bit-identical to the reference
// applyRoPE — tests enforce it.
func (e *Executor) applyRoPECached(m tensor.Matrix, dh, startPos int) {
	sinT, cosT := e.ropeTables()
	half := dh / 2
	heads := m.Cols / dh
	for r := 0; r < m.Rows; r++ {
		tab := (startPos + r) * half
		row := m.Row(r)
		for h := 0; h < heads; h++ {
			off := h * dh
			for i := 0; i < half; i++ {
				sin, cos := sinT[tab+i], cosT[tab+i]
				a := float64(row[off+2*i])
				b := float64(row[off+2*i+1])
				row[off+2*i] = float32(a*cos - b*sin)
				row[off+2*i+1] = float32(a*sin + b*cos)
			}
		}
	}
}

// applyRoPE is the table-free reference rotation: pair i of a head turns
// by pos · base^(-2i/d_h) with base 10000, the standard rotary embedding.
// m holds stacked heads of width dh; row r sits at absolute position
// startPos + r. The executor uses applyRoPECached; tests pin the two to
// identical results.
func applyRoPE(m tensor.Matrix, dh, startPos int) {
	const base = 10000.0
	heads := m.Cols / dh
	for r := 0; r < m.Rows; r++ {
		pos := float64(startPos + r)
		row := m.Row(r)
		for h := 0; h < heads; h++ {
			off := h * dh
			for i := 0; i < dh/2; i++ {
				theta := pos * math.Pow(base, -2*float64(i)/float64(dh))
				sin, cos := math.Sincos(theta)
				a := float64(row[off+2*i])
				b := float64(row[off+2*i+1])
				row[off+2*i] = float32(a*cos - b*sin)
				row[off+2*i+1] = float32(a*sin + b*cos)
			}
		}
	}
}
