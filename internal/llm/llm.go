// Package llm is a functional decoder-only transformer — real float32/
// bfloat16 math, KV cache, greedy decoding — with the same six-sublayer
// decoder structure the analytical model assumes (Figure 1/6). Each
// GEMM/GEMV sublayer is routed by an offloading policy: CPU-assigned
// sublayers execute through the emulated AMX tile pipeline (package amx),
// GPU-assigned ones through the plain dense kernels (package tensor).
//
// Its purpose in the reproduction is evidence, not speed: it demonstrates
// that LIA's dataflow — including cross-device KV-cache handling and
// per-sublayer device splits — is executable end to end, and that the
// offloading decision never changes the computed tokens (the policy-
// invariance property the paper's correctness implicitly rests on).
package llm

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/lia-sim/lia/internal/amx"
	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/quant"
	"github.com/lia-sim/lia/internal/tensor"
)

// LayerWeights holds one decoder layer's parameters.
type LayerWeights struct {
	// LN1 and LN2 are the pre-attention and pre-FFN layer norms.
	LN1Gain, LN1Bias []float32
	LN2Gain, LN2Bias []float32
	// WQKV maps d → 3d (query, key, value fused); BQKV is its bias.
	WQKV tensor.Matrix
	BQKV []float32
	// WOut maps d → d with bias BOut.
	WOut tensor.Matrix
	BOut []float32
	// WFC1 maps d → dff, WFC2 maps dff → d.
	WFC1 tensor.Matrix
	BFC1 []float32
	WFC2 tensor.Matrix
	BFC2 []float32
}

// Model is a runnable transformer.
type Model struct {
	// Cfg describes the architecture (use TinyConfig for tests).
	Cfg model.Config
	// Embed is the token embedding (vocab × d), tied as the LM head.
	Embed tensor.Matrix
	// Pos is the learned positional embedding (maxSeq × d).
	Pos tensor.Matrix
	// Layers holds the decoder stack.
	Layers []LayerWeights
	// FinalGain and FinalBias are the final layer norm.
	FinalGain, FinalBias []float32
}

// TinyConfig returns a laptop-scale architecture with the same structure
// as the OPT family, for functional runs.
func TinyConfig() model.Config {
	return model.Config{
		Name: "tiny-opt", Layers: 2, DModel: 64, Heads: 4, KVHeads: 4,
		DFF: 256, VocabSize: 101, MaxSeqLen: 128, BytesPerParam: 2, Experts: 1,
	}
}

// NewRandom builds a model with deterministic, well-scaled random
// weights — the dummy-weight setup the paper's artifact uses (§A.5).
func NewRandom(cfg model.Config, seed int64) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.VocabSize <= 0 || cfg.MaxSeqLen <= 0 {
		return nil, fmt.Errorf("llm: config needs vocab and max sequence length")
	}
	rng := rand.New(rand.NewSource(seed))
	d, dff := cfg.DModel, cfg.DFF
	scale := float32(0.02)
	randMat := func(r, c int) tensor.Matrix {
		m := tensor.New(r, c)
		for i := range m.Data {
			m.Data[i] = float32(rng.NormFloat64()) * scale
		}
		return m
	}
	ones := func(n int) []float32 {
		v := make([]float32, n)
		for i := range v {
			v[i] = 1
		}
		return v
	}
	zeros := func(n int) []float32 { return make([]float32, n) }

	// Grouped-query attention shrinks the K/V projections; a gated FFN
	// doubles FC1 (gate + up).
	kvDim := cfg.KVDim()
	qkvWidth := d + 2*kvDim
	fc1Width := dff
	if cfg.GatedFFN {
		fc1Width = 2 * dff
	}
	m := &Model{
		Cfg:       cfg,
		Embed:     randMat(cfg.VocabSize, d),
		Pos:       randMat(cfg.MaxSeqLen, d),
		FinalGain: ones(d),
		FinalBias: zeros(d),
	}
	for i := 0; i < cfg.Layers; i++ {
		m.Layers = append(m.Layers, LayerWeights{
			LN1Gain: ones(d), LN1Bias: zeros(d),
			LN2Gain: ones(d), LN2Bias: zeros(d),
			WQKV: randMat(d, qkvWidth), BQKV: zeros(qkvWidth),
			WOut: randMat(d, d), BOut: zeros(d),
			WFC1: randMat(d, fc1Width), BFC1: zeros(fc1Width),
			WFC2: randMat(dff, d), BFC2: zeros(d),
		})
	}
	return m, nil
}

// KVCache stores per-layer key and value matrices (grown row-wise as
// decoding proceeds).
type KVCache struct {
	// K and V are indexed by layer; each is (seen × KVDim).
	K, V []tensor.Matrix
}

// Len returns the cached context length.
func (c *KVCache) Len() int {
	if len(c.K) == 0 {
		return 0
	}
	return c.K[0].Rows
}

// Stats counts what the executor did — tests use it to prove routing.
type Stats struct {
	// CPUMatmuls and GPUMatmuls count kernel dispatches per device.
	CPUMatmuls, GPUMatmuls int
	// Int8Matmuls counts quantized (TDPBUSD) dispatches.
	Int8Matmuls int
	// AMXCycles accumulates emulated tile-pipeline cycles.
	AMXCycles uint64
}

// quantizedLayer caches one decoder layer's INT8 parameter matrices.
type quantizedLayer struct {
	wQKV, wOut, wFC1, wFC2 quant.Weights
}

// Executor runs a model under an offloading policy.
type Executor struct {
	// Model is the network to run.
	Model *Model
	// Policy routes each sublayer to the AMX (CPU) or dense (GPU) kernels.
	Policy core.Policy
	// Stats accumulates dispatch counters.
	Stats Stats
	// int8 holds pre-quantized parameter weights when INT8 mode is on.
	int8 []quantizedLayer
}

// NewExecutor wires a model to a policy.
func NewExecutor(m *Model, p core.Policy) *Executor {
	return &Executor{Model: m, Policy: p}
}

// EnableINT8 quantizes every parameter-sublayer weight matrix to INT8
// with per-output-channel scales; subsequent forward passes run those
// sublayers through the AMX TDPBUSD pipeline (W8A8). Attention scoring
// (the KV cache) stays BF16, matching the §6 observation that it is the
// precision- and bandwidth-sensitive path.
func (e *Executor) EnableINT8() {
	e.int8 = make([]quantizedLayer, len(e.Model.Layers))
	for i, w := range e.Model.Layers {
		e.int8[i] = quantizedLayer{
			wQKV: quant.QuantizeWeights(w.WQKV),
			wOut: quant.QuantizeWeights(w.WOut),
			wFC1: quant.QuantizeWeights(w.WFC1),
			wFC2: quant.QuantizeWeights(w.WFC2),
		}
	}
}

// INT8 reports whether quantized mode is on.
func (e *Executor) INT8() bool { return e.int8 != nil }

// linear computes x·W for a parameter sublayer of layer li, through the
// INT8 pipeline when enabled, else through the policy-routed BF16 path.
func (e *Executor) linear(li int, s model.Sublayer, x, w tensor.Matrix) tensor.Matrix {
	if e.int8 != nil {
		q := &e.int8[li]
		var qw *quant.Weights
		switch s {
		case model.QKVMapping:
			qw = &q.wQKV
		case model.OutProjection:
			qw = &q.wOut
		case model.FC1:
			qw = &q.wFC1
		case model.FC2:
			qw = &q.wFC2
		}
		if qw != nil {
			out, cycles, err := quant.Linear(x, *qw)
			if err != nil {
				panic(fmt.Sprintf("llm: int8 linear: %v", err))
			}
			e.Stats.Int8Matmuls++
			e.Stats.AMXCycles += cycles
			return out
		}
	}
	return e.matmul(s, x, w)
}

// matmul dispatches C = A·B for a sublayer: the emulated AMX tile
// pipeline when the policy places it on the CPU, the dense kernel (with
// the same BF16 input rounding a GPU tensor core applies) otherwise.
func (e *Executor) matmul(s model.Sublayer, a, b tensor.Matrix) tensor.Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("llm: %s matmul shape mismatch %dx%d · %dx%d", s, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if e.Policy.OnCPU(s) {
		out, cycles, err := amx.MatmulBF16(a.Data, b.Data, a.Rows, a.Cols, b.Cols)
		if err != nil {
			panic(fmt.Sprintf("llm: AMX matmul: %v", err))
		}
		e.Stats.CPUMatmuls++
		e.Stats.AMXCycles += cycles
		return tensor.FromSlice(a.Rows, b.Cols, out)
	}
	e.Stats.GPUMatmuls++
	ar := a.Clone()
	br := b.Clone()
	amx.RoundSlice(ar.Data)
	amx.RoundSlice(br.Data)
	return tensor.MatMul(ar, br)
}

// forwardLayer runs one decoder layer over the hidden states x
// (rows × d), reading `past` cached positions and appending the new K/V
// rows to the cache. mask enables causal masking (prefill).
func (e *Executor) forwardLayer(li int, x tensor.Matrix, cache *KVCache, mask bool) tensor.Matrix {
	cfg := e.Model.Cfg
	w := e.Model.Layers[li]
	d := cfg.DModel
	nh := cfg.Heads
	dh := cfg.HeadDim()
	kvDim := cfg.KVDim()
	groups := nh / cfg.KVHeads // query heads per KV head (1 for MHA)

	// Sublayer 1: QKV mapping (pre-LN fused in).
	normed := tensor.LayerNorm(x, w.LN1Gain, w.LN1Bias, 1e-5)
	qkv := tensor.AddBias(e.linear(li, model.QKVMapping, normed, w.WQKV), w.BQKV)
	q := qkv.SliceCols(0, d)
	k := qkv.SliceCols(d, d+kvDim)
	v := qkv.SliceCols(d+kvDim, d+2*kvDim)

	// Rotary embeddings rotate the fresh queries and keys by their
	// absolute positions before the keys are cached (Llama-family models).
	past := cache.K[li].Rows
	if cfg.RoPE {
		applyRoPE(q, dh, past)
		applyRoPE(k, dh, past)
	}
	cache.K[li] = tensor.Concat(cache.K[li], k)
	cache.V[li] = tensor.Concat(cache.V[li], v)
	fullK := cache.K[li]
	fullV := cache.V[li]

	// Sublayers 2+3 per head: scores = Q·Kᵀ/√dh, probs = softmax, ctx =
	// probs·V.
	ctx := tensor.New(x.Rows, d)
	invSqrt := float32(1 / math.Sqrt(float64(dh)))
	for h := 0; h < nh; h++ {
		kvHead := h / groups // grouped-query attention shares KV heads
		qh := q.SliceCols(h*dh, (h+1)*dh)
		kh := fullK.SliceCols(kvHead*dh, (kvHead+1)*dh)
		vh := fullV.SliceCols(kvHead*dh, (kvHead+1)*dh)

		// Q·Kᵀ through the policy-routed kernel (transpose materialized).
		khT := tensor.New(kh.Cols, kh.Rows)
		for r := 0; r < kh.Rows; r++ {
			for c := 0; c < kh.Cols; c++ {
				khT.Set(c, r, kh.At(r, c))
			}
		}
		scores := tensor.Scale(e.matmul(model.QKT, qh, khT), invSqrt)
		if mask {
			tensor.CausalMask(scores, past)
		}
		tensor.SoftmaxRows(scores)
		ctxH := e.matmul(model.SV, scores, vh)
		for r := 0; r < ctx.Rows; r++ {
			copy(ctx.Row(r)[h*dh:(h+1)*dh], ctxH.Row(r))
		}
	}

	// Sublayer 4: output projection + residual.
	attnOut := tensor.AddBias(e.linear(li, model.OutProjection, ctx, w.WOut), w.BOut)
	x = tensor.Add(x, attnOut)

	// Sublayers 5+6: FFN (pre-LN fused) with the architecture's
	// activation — SwiGLU gating for gated models, ReLU for OPT — then
	// the residual.
	normed2 := tensor.LayerNorm(x, w.LN2Gain, w.LN2Bias, 1e-5)
	h1 := tensor.AddBias(e.linear(li, model.FC1, normed2, w.WFC1), w.BFC1)
	if cfg.GatedFFN {
		gate := tensor.SiLU(h1.SliceCols(0, cfg.DFF))
		up := h1.SliceCols(cfg.DFF, 2*cfg.DFF)
		h1 = tensor.MulElem(gate, up)
	} else {
		h1 = tensor.ReLU(h1)
	}
	h2 := tensor.AddBias(e.linear(li, model.FC2, h1, w.WFC2), w.BFC2)
	return tensor.Add(x, h2)
}

// embed builds the hidden states for token IDs starting at position pos.
func (e *Executor) embed(tokens []int, pos int) (tensor.Matrix, error) {
	cfg := e.Model.Cfg
	x := tensor.New(len(tokens), cfg.DModel)
	for i, tok := range tokens {
		if tok < 0 || tok >= cfg.VocabSize {
			return tensor.Matrix{}, fmt.Errorf("llm: token %d outside vocabulary [0, %d)", tok, cfg.VocabSize)
		}
		p := pos + i
		if p >= cfg.MaxSeqLen {
			return tensor.Matrix{}, fmt.Errorf("llm: position %d exceeds max sequence length %d", p, cfg.MaxSeqLen)
		}
		row := x.Row(i)
		copy(row, e.Model.Embed.Row(tok))
		if !cfg.RoPE {
			for c, pv := range e.Model.Pos.Row(p) {
				row[c] += pv
			}
		}
	}
	return x, nil
}

// logits projects hidden states onto the (tied) vocabulary.
func (e *Executor) logits(x tensor.Matrix) tensor.Matrix {
	normed := tensor.LayerNorm(x, e.Model.FinalGain, e.Model.FinalBias, 1e-5)
	return tensor.MatMulT(normed, e.Model.Embed)
}

// NewCache returns an empty KV cache for the model.
func (e *Executor) NewCache() *KVCache {
	c := &KVCache{}
	for range e.Model.Layers {
		c.K = append(c.K, tensor.New(0, e.Model.Cfg.KVDim()))
		c.V = append(c.V, tensor.New(0, e.Model.Cfg.KVDim()))
	}
	return c
}

// Prefill runs the Sum stage over a prompt, returning the logits of its
// last position and the populated KV cache.
func (e *Executor) Prefill(prompt []int) (tensor.Matrix, *KVCache, error) {
	if len(prompt) == 0 {
		return tensor.Matrix{}, nil, fmt.Errorf("llm: empty prompt")
	}
	cache := e.NewCache()
	x, err := e.embed(prompt, 0)
	if err != nil {
		return tensor.Matrix{}, nil, err
	}
	for li := range e.Model.Layers {
		x = e.forwardLayer(li, x, cache, true)
	}
	return e.logits(x), cache, nil
}

// DecodeStep runs the Gen stage for one token, extending the cache.
func (e *Executor) DecodeStep(cache *KVCache, token int) (tensor.Matrix, error) {
	x, err := e.embed([]int{token}, cache.Len())
	if err != nil {
		return tensor.Matrix{}, err
	}
	for li := range e.Model.Layers {
		x = e.forwardLayer(li, x, cache, false)
	}
	return e.logits(x), nil
}

// Generate greedily decodes n tokens after the prompt.
func (e *Executor) Generate(prompt []int, n int) ([]int, error) {
	logits, cache, err := e.Prefill(prompt)
	if err != nil {
		return nil, err
	}
	out := make([]int, 0, n)
	next := logits.ArgmaxRow(logits.Rows - 1)
	for i := 0; i < n; i++ {
		out = append(out, next)
		if i == n-1 {
			break
		}
		step, err := e.DecodeStep(cache, next)
		if err != nil {
			return nil, err
		}
		next = step.ArgmaxRow(0)
	}
	return out, nil
}

// TinyLlamaConfig returns a laptop-scale architecture with Llama2's
// structural features: grouped-query attention (2 KV heads for 4 query
// heads) and a SwiGLU gated FFN.
func TinyLlamaConfig() model.Config {
	return model.Config{
		Name: "tiny-llama", Layers: 2, DModel: 64, Heads: 4, KVHeads: 2,
		DFF: 96, VocabSize: 101, MaxSeqLen: 128, BytesPerParam: 2,
		GatedFFN: true, RoPE: true, Experts: 1,
	}
}

// GenerateBatch greedily decodes n tokens for each prompt, sharing the
// model weights across the batch (each sequence keeps its own KV cache,
// like the per-request caches of §2.1). Results align with prompts.
func (e *Executor) GenerateBatch(prompts [][]int, n int) ([][]int, error) {
	if len(prompts) == 0 {
		return nil, fmt.Errorf("llm: empty batch")
	}
	out := make([][]int, len(prompts))
	for i, prompt := range prompts {
		tokens, err := e.Generate(prompt, n)
		if err != nil {
			return nil, fmt.Errorf("llm: sequence %d: %w", i, err)
		}
		out[i] = tokens
	}
	return out, nil
}

// applyRoPE rotates each row's per-head (even, odd) pairs by the row's
// absolute position: pair i of a head turns by pos · base^(-2i/d_h) with
// base 10000, the standard rotary embedding. m holds stacked heads of
// width dh; row r sits at absolute position startPos + r.
func applyRoPE(m tensor.Matrix, dh, startPos int) {
	const base = 10000.0
	heads := m.Cols / dh
	for r := 0; r < m.Rows; r++ {
		pos := float64(startPos + r)
		row := m.Row(r)
		for h := 0; h < heads; h++ {
			off := h * dh
			for i := 0; i < dh/2; i++ {
				theta := pos * math.Pow(base, -2*float64(i)/float64(dh))
				sin, cos := math.Sincos(theta)
				a := float64(row[off+2*i])
				b := float64(row[off+2*i+1])
				row[off+2*i] = float32(a*cos - b*sin)
				row[off+2*i+1] = float32(a*sin + b*cos)
			}
		}
	}
}
