package llm

import (
	"math"
	"testing"

	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/quant"
	"github.com/lia-sim/lia/internal/tensor"
)

// prunedModel returns a copy of m with every parameter-sublayer matrix
// block-pruned exactly as EnableSparse prunes it — the dense reference
// the sparse tier must match bit-for-bit.
func prunedModel(m *Model, sparsity float64) *Model {
	out := *m
	out.Layers = append([]LayerWeights(nil), m.Layers...)
	for i := range out.Layers {
		l := &out.Layers[i]
		l.WQKV, _ = quant.PruneBlocks(l.WQKV, sparsity)
		l.WOut, _ = quant.PruneBlocks(l.WOut, sparsity)
		l.WFC1, _ = quant.PruneBlocks(l.WFC1, sparsity)
		l.WFC2, _ = quant.PruneBlocks(l.WFC2, sparsity)
	}
	return &out
}

// The golden-corpus contract for the sparse tier: skipping zero blocks is
// an elision, not an approximation — tokens are bit-identical to a dense
// executor running the same pruned weights, under every policy.
func TestSparseTierBitIdenticalToDenseOnPrunedWeights(t *testing.T) {
	m := tinyModel(t)
	prompt := []int{3, 14, 15, 92}
	const sparsity = 0.5
	for _, p := range []core.Policy{core.FullCPU, core.FullGPU, core.PartialCPU} {
		ref, err := NewExecutor(prunedModel(m, sparsity), p).Generate(prompt, 12)
		if err != nil {
			t.Fatal(err)
		}
		e := NewExecutor(m, p)
		e.EnableSparse(sparsity)
		if !e.Sparse() || e.QuantTier() != "sparse" {
			t.Fatal("sparse tier not reported")
		}
		got, err := e.Generate(prompt, 12)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("policy %s: sparse tokens diverged at %d: %v vs %v", p, i, got, ref)
			}
		}
	}
}

func TestSparseTierStatsAndFootprint(t *testing.T) {
	m := tinyModel(t)
	e := NewExecutor(m, core.FullCPU)
	dense := e.WeightFootprint()
	e.EnableSparse(0.5)
	if _, _, err := e.Prefill([]int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	cfg := m.Cfg
	if want := 4 * cfg.Layers; e.Stats.SparseMatmuls != want {
		t.Errorf("sparse matmuls = %d, want %d", e.Stats.SparseMatmuls, want)
	}
	if e.Stats.SparseBlocksSkipped == 0 {
		t.Error("no blocks skipped at 50% sparsity")
	}
	if got := e.WeightFootprint(); got >= dense {
		t.Errorf("sparse footprint %d not below dense %d", got, dense)
	}
	if f := e.SparseSkipFraction(); f < 0.5 || f > 0.7 {
		t.Errorf("skip fraction %v, want ≈0.5", f)
	}
}

// The golden-corpus contract for the INT4 tier: logits track a dense
// executor running the dequantized weights within a small relative
// tolerance (the LUT kernel factors scales out of the lookup sums, so it
// is close, not bit-identical), and most greedy tokens agree.
func TestINT4TierTracksDequantizedReference(t *testing.T) {
	m := tinyModel(t)
	prompt := []int{5, 17, 42}

	deq := *m
	deq.Layers = append([]LayerWeights(nil), m.Layers...)
	for i := range deq.Layers {
		l := &deq.Layers[i]
		for _, w := range []*tensor.Matrix{&l.WQKV, &l.WOut, &l.WFC1, &l.WFC2} {
			q, err := quant.QuantizeINT4(*w, 0)
			if err != nil {
				t.Fatal(err)
			}
			*w = q.Dequantize()
		}
	}
	ref, _, err := NewExecutor(&deq, core.FullGPU).Prefill(prompt)
	if err != nil {
		t.Fatal(err)
	}

	e := NewExecutor(m, core.FullGPU)
	e.EnableINT4LUT(0)
	if !e.INT4() || e.QuantTier() != "int4lut" {
		t.Fatal("int4 tier not reported")
	}
	got, _, err := e.Prefill(prompt)
	if err != nil {
		t.Fatal(err)
	}
	var mag float64
	for _, v := range ref.Data {
		mag = math.Max(mag, math.Abs(float64(v)))
	}
	if errAbs := quant.MaxAbsError(got, ref); errAbs > 0.05*math.Max(mag, 1) {
		t.Errorf("int4 logits off by %v against dequantized reference (magnitude %v)", errAbs, mag)
	}
	if want := 4 * m.Cfg.Layers; e.Stats.Int4Matmuls != want {
		t.Errorf("int4 matmuls = %d, want %d", e.Stats.Int4Matmuls, want)
	}

	// Greedy tokens mostly agree with the dequantized reference model —
	// the kernel-level contract (4-bit quantization error against full
	// BF16 is a model-quality question, not tested here).
	refToks, err := NewExecutor(&deq, core.FullGPU).Generate(prompt, 16)
	if err != nil {
		t.Fatal(err)
	}
	e2 := NewExecutor(m, core.FullGPU)
	e2.EnableINT4LUT(0)
	toks, err := e2.Generate(prompt, 16)
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for i := range refToks {
		if toks[i] < 0 || toks[i] >= m.Cfg.VocabSize {
			t.Fatalf("token %d out of vocabulary", toks[i])
		}
		if toks[i] == refToks[i] {
			agree++
		}
	}
	if agree < len(refToks)*7/10 {
		t.Errorf("only %d/%d tokens agree with the dequantized reference", agree, len(refToks))
	}
}

// INT4 storage is at most half of INT8 storage for the same weights —
// the ISSUE's footprint acceptance bound, on real executor weights.
func TestINT4FootprintHalfOfINT8(t *testing.T) {
	m := tinyModel(t)
	e8 := NewExecutor(m, core.FullGPU)
	e8.EnableINT8()
	e4 := NewExecutor(m, core.FullGPU)
	e4.EnableINT4LUT(0)
	if 2*e4.WeightFootprint() > e8.WeightFootprint() {
		t.Errorf("int4 footprint %d not ≤ half of int8 %d", e4.WeightFootprint(), e8.WeightFootprint())
	}
}

// Both compressed tiers compute every output row from its own input row,
// so unlike INT8 they stay on the fused batch-decode path: fused batch
// tokens must be bit-identical to per-sequence generation.
func TestCompressedTiersStayOnFusedPath(t *testing.T) {
	m := tinyModel(t)
	prompts := [][]int{{1, 2, 3}, {4, 5}, {6, 7, 8, 9}}
	enable := map[string]func(*Executor){
		"sparse":  func(e *Executor) { e.EnableSparse(0.5) },
		"int4lut": func(e *Executor) { e.EnableINT4LUT(0) },
	}
	for name, on := range enable {
		ref := make([][]int, len(prompts))
		for i, p := range prompts {
			e := NewExecutor(m, core.PartialCPU)
			on(e)
			out, err := e.Generate(p, 8)
			if err != nil {
				t.Fatal(err)
			}
			ref[i] = out
		}
		e := NewExecutor(m, core.PartialCPU)
		on(e)
		got, err := e.GenerateBatchFused(prompts, 8)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			for j := range ref[i] {
				if got[i][j] != ref[i][j] {
					t.Fatalf("%s: fused batch diverged on seq %d: %v vs %v", name, i, got[i], ref[i])
				}
			}
		}
	}
}

// Enabling a tier replaces any other: the executor never runs two
// compressed formats at once.
func TestCompressedTiersMutuallyExclusive(t *testing.T) {
	e := NewExecutor(tinyModel(t), core.FullGPU)
	e.EnableINT8()
	e.EnableSparse(0.25)
	if e.INT8() || e.INT4() || !e.Sparse() {
		t.Fatal("EnableSparse must clear other tiers")
	}
	e.EnableINT4LUT(0)
	if e.INT8() || e.Sparse() || !e.INT4() {
		t.Fatal("EnableINT4LUT must clear other tiers")
	}
	e.EnableINT8()
	if e.Sparse() || e.INT4() || !e.INT8() {
		t.Fatal("EnableINT8 must clear other tiers")
	}
}

// The QKV projection has been one fused d → (d + 2·kvDim) GEMM since the
// seed; pin that a decode step dispatches exactly 4 parameter GEMMs per
// layer (QKV, OutProj, FC1, FC2 — not 6) plus the 2-per-KV-head fused
// attention pair.
func TestDecodeStepDispatchBudget(t *testing.T) {
	m := tinyModel(t)
	e := NewExecutor(m, core.FullGPU)
	_, cache, err := e.Prefill([]int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	before := e.Stats.GPUMatmuls
	if _, err := e.DecodeStep(cache, 4); err != nil {
		t.Fatal(err)
	}
	cfg := m.Cfg
	want := (4 + 2*cfg.KVHeads) * cfg.Layers
	if got := e.Stats.GPUMatmuls - before; got != want {
		t.Errorf("decode step dispatched %d GEMMs, want %d (4 params + 2·KVHeads attention per layer)", got, want)
	}
}
