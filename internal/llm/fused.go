// Cross-sequence batched decode: one scheduling round's B single-row
// decode passes share every parameter GEMM. Per-sequence decode runs
// each sublayer as a 1-row GEMV, so the emulated AMX pipeline pads each
// call to a full 16-row tile block and wastes 15/16 of its tile
// throughput; stacking the B activation rows into one matrix turns
// those B dispatches into one ⌈B/16⌉-block call against the same packed
// weight image — the per-pass amortization LIA's §5 kernels live on.
// Attention cannot stack (each sequence has its own KV cache, length
// and positions), so it stays per-sequence and runs in parallel on the
// runner pool using each sequence's own executor fork and scratch.
package llm

import (
	"context"
	"fmt"
	"math"

	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/runner"
	"github.com/lia-sim/lia/internal/tensor"
)

// StepBatchFused advances every sequence one decode step like
// StepBatch, computing the four parameter sublayers of the whole batch
// as one stacked GEMM each instead of B single-row calls.
//
// Per-element results are bit-identical to StepBatch: every kernel on
// the stacked path computes each output row from its input row alone —
// LayerNorm, bias adds and activations are row-wise, and both GEMM
// routes accumulate each output element over its own row in a fixed
// k-order no matter which other rows share the call (the AMX tile
// blocks zero-pad unused rows; the dense route rounds elementwise and
// dots row-by-row). The invariance tests pin this against StepBatch.
//
// INT8 mode (per-pass activation scales would couple the stacked rows)
// and attached memory hosts (pass windows are per-cache) fall back to
// StepBatch; so do single-sequence batches, where there is nothing to
// stack.
func (e *Executor) StepBatchFused(ctx context.Context, seqs []*Sequence) error {
	if len(seqs) == 0 {
		return fmt.Errorf("llm: empty step batch")
	}
	if e.int8 != nil || e.Mem != nil || len(seqs) == 1 {
		return StepBatch(ctx, seqs)
	}
	// Emit phase, preserving Step's error contract for finished or
	// still-prefilling members.
	active := make([]*Sequence, 0, len(seqs))
	for _, s := range seqs {
		if s.Prefilling() {
			return fmt.Errorf("llm: sequence is still prefilling (%d/%d prompt tokens)", s.prefillPos, len(s.prompt))
		}
		if s.Done() {
			return fmt.Errorf("llm: sequence already emitted its %d tokens", s.target)
		}
		s.out = append(s.out, s.pending)
		if !s.Done() {
			active = append(active, s)
		}
	}
	if len(active) == 0 {
		return nil
	}
	return e.decodeRoundFused(ctx, active)
}

// decodeRoundFused computes the next pending token for every active
// sequence in one stacked pass over the layer stack.
func (e *Executor) decodeRoundFused(ctx context.Context, active []*Sequence) error {
	x := tensor.New(len(active), e.Model.Cfg.DModel)
	for r, s := range active {
		tok := s.out[len(s.out)-1]
		if err := e.embedRow(x.Row(r), tok, s.cache.Len()); err != nil {
			return err
		}
	}
	var err error
	for li := range e.Model.Layers {
		if x, err = e.fusedLayer(ctx, li, x, active); err != nil {
			return err
		}
	}
	logits := e.logits(x)
	for r, s := range active {
		s.pending = logits.ArgmaxRow(r)
	}
	return nil
}

// fusedLayer is forwardLayer for one stacked decode round: the
// parameter sublayers run over all B rows at once on the parent
// executor (whose Stats then count one dispatch per sublayer, not B),
// the per-sequence attention block runs on each sequence's fork in
// parallel, writing disjoint rows of the shared context matrix.
func (e *Executor) fusedLayer(ctx context.Context, li int, x tensor.Matrix, active []*Sequence) (tensor.Matrix, error) {
	cfg := e.Model.Cfg
	w := e.Model.Layers[li]

	normed := tensor.LayerNorm(x, w.LN1Gain, w.LN1Bias, 1e-5)
	qkv := tensor.AddBias(e.linear(li, model.QKVMapping, normed), w.BQKV)

	ctxAll := tensor.New(x.Rows, cfg.DModel)
	rows := make([]int, len(active))
	for i := range rows {
		rows[i] = i
	}
	if _, err := runner.Map(ctx, rows, func(_ context.Context, r int) (struct{}, error) {
		s := active[r]
		s.e.decodeAttnRow(li, qkv.Row(r), s.cache, ctxAll.Row(r))
		return struct{}{}, nil
	}); err != nil {
		return tensor.Matrix{}, fmt.Errorf("llm: %w", err)
	}

	attnOut := tensor.AddBias(e.linear(li, model.OutProjection, ctxAll), w.BOut)
	x = tensor.Add(x, attnOut)

	normed2 := tensor.LayerNorm(x, w.LN2Gain, w.LN2Bias, 1e-5)
	h1 := tensor.AddBias(e.linear(li, model.FC1, normed2), w.BFC1)
	if cfg.GatedFFN {
		gate := tensor.SiLU(h1.SliceCols(0, cfg.DFF))
		up := h1.SliceCols(cfg.DFF, 2*cfg.DFF)
		h1 = tensor.MulElem(gate, up)
	} else {
		h1 = tensor.ReLU(h1)
	}
	h2 := tensor.AddBias(e.linear(li, model.FC2, h1), w.BFC2)
	return tensor.Add(x, h2), nil
}

// decodeAttnRow is forwardLayer's attention block for one decode row:
// the sequence's freshly projected qkv row is split, rotated by its own
// absolute position, appended to its cache and scored against it head
// by head — operation-for-operation what a solo DecodeStep performs,
// on the fork's scratch and dispatch counters (e here is the
// sequence's fork).
func (e *Executor) decodeAttnRow(li int, qkvRow []float32, cache *KVCache, ctxRow []float32) {
	cfg := e.Model.Cfg
	d := cfg.DModel
	nh := cfg.Heads
	dh := cfg.HeadDim()
	kvDim := cfg.KVDim()
	groups := nh / cfg.KVHeads

	q := tensor.New(1, d)
	copy(q.Data, qkvRow[:d])
	k := tensor.New(1, kvDim)
	copy(k.Data, qkvRow[d:d+kvDim])
	v := tensor.New(1, kvDim)
	copy(v.Data, qkvRow[d+kvDim:d+2*kvDim])

	past := cache.K[li].Rows
	if cfg.RoPE {
		e.applyRoPECached(q, dh, past)
		e.applyRoPECached(k, dh, past)
	}
	cache.Append(li, k, v)
	fullV := cache.V[li]
	seen := fullV.Rows

	invSqrt := float32(1 / math.Sqrt(float64(dh)))
	if cap(e.khT) < dh*seen {
		e.khT = make([]float32, dh*cache.capRows)
	}
	if cap(e.qhBuf) < groups*dh {
		e.qhBuf = make([]float32, groups*dh)
	}
	if cap(e.vhBuf) < seen*dh {
		e.vhBuf = make([]float32, cache.capRows*dh)
	}
	// Same KV-head fusion as forwardLayer: the group's query rows stack
	// into one operand, one Q·Kᵀ and one probs·V per KV head (no causal
	// mask — a decode row attends to everything).
	for kvHead := 0; kvHead < cfg.KVHeads; kvHead++ {
		qh := tensor.FromSlice(groups, dh, e.qhBuf[:groups*dh])
		for g := 0; g < groups; g++ {
			h := kvHead*groups + g
			copy(qh.Row(g), q.Row(0)[h*dh:(h+1)*dh])
		}
		vh := tensor.FromSlice(seen, dh, e.vhBuf[:seen*dh])
		for r := 0; r < seen; r++ {
			copy(vh.Row(r), fullV.Row(r)[kvHead*dh:(kvHead+1)*dh])
		}
		khT := tensor.FromSlice(dh, seen, e.khT[:dh*seen])
		kt := cache.kT[li]
		for i := 0; i < dh; i++ {
			copy(khT.Row(i), kt.Row(kvHead*dh + i)[:seen])
		}
		scores := tensor.Scale(e.matmul(model.QKT, qh, khT), invSqrt)
		tensor.SoftmaxRows(scores)
		ctxH := e.matmul(model.SV, scores, vh)
		for g := 0; g < groups; g++ {
			h := kvHead*groups + g
			copy(ctxRow[h*dh:(h+1)*dh], ctxH.Row(g))
		}
	}
}

// GenerateBatchFused is GenerateBatch through the fused decode rounds:
// prompts prefill in parallel, then every decode iteration advances the
// whole batch through StepBatchFused. Tokens are bit-identical to
// GenerateBatch (and to sequential Generate calls); only the dispatch
// shape changes.
func (e *Executor) GenerateBatchFused(prompts [][]int, n int) ([][]int, error) {
	if len(prompts) == 0 {
		return nil, fmt.Errorf("llm: empty batch")
	}
	if e.int8 != nil || e.Mem != nil {
		return e.GenerateBatch(prompts, n)
	}
	ctx := context.Background()
	seqs, err := runner.Map(ctx, prompts, func(_ context.Context, prompt []int) (*Sequence, error) {
		return e.NewSequence(prompt, n)
	})
	if err != nil {
		return nil, fmt.Errorf("llm: %w", err)
	}
	for {
		live := seqs[:0:0]
		for _, s := range seqs {
			if !s.Done() {
				live = append(live, s)
			}
		}
		if len(live) == 0 {
			break
		}
		if err := e.StepBatchFused(ctx, live); err != nil {
			return nil, err
		}
	}
	out := make([][]int, len(seqs))
	for i, s := range seqs {
		out[i] = s.Output()
		e.Stats.add(s.e.Stats)
	}
	return out, nil
}
