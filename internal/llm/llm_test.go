package llm

import (
	"math"
	"testing"

	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/tensor"
)

func tinyModel(t *testing.T) *Model {
	t.Helper()
	m, err := NewRandom(TinyConfig(), 42)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewRandomValidates(t *testing.T) {
	bad := TinyConfig()
	bad.Layers = 0
	if _, err := NewRandom(bad, 1); err == nil {
		t.Error("invalid config accepted")
	}
	bad = TinyConfig()
	bad.VocabSize = 0
	if _, err := NewRandom(bad, 1); err == nil {
		t.Error("zero vocab accepted")
	}
}

func TestDeterministicWeights(t *testing.T) {
	a, _ := NewRandom(TinyConfig(), 7)
	b, _ := NewRandom(TinyConfig(), 7)
	if !a.Embed.Equal(b.Embed, 0) || !a.Layers[0].WQKV.Equal(b.Layers[0].WQKV, 0) {
		t.Error("same seed must give identical weights")
	}
	c, _ := NewRandom(TinyConfig(), 8)
	if a.Embed.Equal(c.Embed, 0) {
		t.Error("different seeds must differ")
	}
}

func TestPrefillShapes(t *testing.T) {
	m := tinyModel(t)
	e := NewExecutor(m, core.FullGPU)
	logits, cache, err := e.Prefill([]int{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if logits.Rows != 4 || logits.Cols != m.Cfg.VocabSize {
		t.Errorf("logits shape %dx%d", logits.Rows, logits.Cols)
	}
	if cache.Len() != 4 {
		t.Errorf("cache length %d, want 4", cache.Len())
	}
	if len(cache.K) != m.Cfg.Layers {
		t.Errorf("cache layers %d", len(cache.K))
	}
}

func TestPrefillRejectsBadInput(t *testing.T) {
	e := NewExecutor(tinyModel(t), core.FullGPU)
	if _, _, err := e.Prefill(nil); err == nil {
		t.Error("empty prompt accepted")
	}
	if _, _, err := e.Prefill([]int{-1}); err == nil {
		t.Error("negative token accepted")
	}
	if _, _, err := e.Prefill([]int{1000}); err == nil {
		t.Error("out-of-vocab token accepted")
	}
	long := make([]int, TinyConfig().MaxSeqLen+1)
	if _, _, err := e.Prefill(long); err == nil {
		t.Error("over-length prompt accepted")
	}
}

// TestPolicyInvariance is the reproduction's key functional property: the
// offloading decision must not change the generated tokens. Every policy
// routes sublayers through different kernels (AMX tiles vs dense), yet
// greedy decoding agrees.
func TestPolicyInvariance(t *testing.T) {
	m := tinyModel(t)
	prompt := []int{5, 17, 42, 9, 63}
	ref, err := NewExecutor(m, core.FullGPU).Generate(prompt, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []core.Policy{core.FullCPU, core.PartialCPU, core.MoEPartial, {true, false, true, false, true, false}} {
		got, err := NewExecutor(m, p).Generate(prompt, 12)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("policy %s diverged at token %d: %v vs %v", p, i, got, ref)
			}
		}
	}
}

// TestIncrementalDecodeMatchesRecompute: decoding with the KV cache must
// agree with re-running prefill over the extended sequence.
func TestIncrementalDecodeMatchesRecompute(t *testing.T) {
	m := tinyModel(t)
	e := NewExecutor(m, core.FullGPU)
	prompt := []int{3, 14, 15, 92}

	_, cache, err := e.Prefill(prompt)
	if err != nil {
		t.Fatal(err)
	}
	step, err := e.DecodeStep(cache, 65)
	if err != nil {
		t.Fatal(err)
	}

	full, _, err := e.Prefill(append(append([]int{}, prompt...), 65))
	if err != nil {
		t.Fatal(err)
	}
	lastRow := tensor.FromSlice(1, full.Cols, full.Row(full.Rows-1))
	for c := 0; c < full.Cols; c++ {
		diff := math.Abs(float64(step.At(0, c) - lastRow.At(0, c)))
		if diff > 2e-3 {
			t.Fatalf("logit %d differs: %v vs %v", c, step.At(0, c), lastRow.At(0, c))
		}
	}
}

// TestRoutingCounters: the executor must actually dispatch to the AMX
// pipeline exactly for CPU-assigned sublayers.
func TestRoutingCounters(t *testing.T) {
	m := tinyModel(t)
	gpu := NewExecutor(m, core.FullGPU)
	if _, _, err := gpu.Prefill([]int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if gpu.Stats.CPUMatmuls != 0 || gpu.Stats.AMXCycles != 0 {
		t.Errorf("full-GPU run touched AMX: %+v", gpu.Stats)
	}
	if gpu.Stats.GPUMatmuls == 0 {
		t.Error("no GPU matmuls recorded")
	}

	cpu := NewExecutor(m, core.FullCPU)
	if _, _, err := cpu.Prefill([]int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if cpu.Stats.GPUMatmuls != 0 {
		t.Errorf("full-CPU run touched GPU kernels: %+v", cpu.Stats)
	}
	if cpu.Stats.CPUMatmuls == 0 || cpu.Stats.AMXCycles == 0 {
		t.Error("no AMX work recorded")
	}

	partial := NewExecutor(m, core.PartialCPU)
	if _, _, err := partial.Prefill([]int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if partial.Stats.CPUMatmuls == 0 || partial.Stats.GPUMatmuls == 0 {
		t.Errorf("partial policy should use both devices: %+v", partial.Stats)
	}
	// Attention scoring runs fused per KV head per layer on the CPU: 2
	// sublayers × KV heads × layers kernels (the query heads of a group
	// stack into one dispatch).
	cfg := m.Cfg
	want := 2 * cfg.KVHeads * cfg.Layers
	if partial.Stats.CPUMatmuls != want {
		t.Errorf("partial CPU matmuls = %d, want %d", partial.Stats.CPUMatmuls, want)
	}
}

func TestGenerateProducesTokensInVocab(t *testing.T) {
	e := NewExecutor(tinyModel(t), core.PartialCPU)
	out, err := e.Generate([]int{1, 2, 3}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 20 {
		t.Fatalf("generated %d tokens, want 20", len(out))
	}
	for _, tok := range out {
		if tok < 0 || tok >= TinyConfig().VocabSize {
			t.Fatalf("token %d outside vocabulary", tok)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	m := tinyModel(t)
	a, err := NewExecutor(m, core.FullGPU).Generate([]int{7, 7, 7}, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewExecutor(m, core.FullGPU).Generate([]int{7, 7, 7}, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("greedy decoding must be deterministic")
		}
	}
}

// TestCausalityOfPrefill: changing a later prompt token must not affect
// earlier positions' logits (causal masking works).
func TestCausalityOfPrefill(t *testing.T) {
	m := tinyModel(t)
	e := NewExecutor(m, core.FullGPU)
	l1, _, err := e.Prefill([]int{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	l2, _, err := e.Prefill([]int{10, 20, 99})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < l1.Cols; c++ {
		if l1.At(0, c) != l2.At(0, c) {
			t.Fatalf("position 0 logits changed with a future token")
		}
		if l1.At(1, c) != l2.At(1, c) {
			t.Fatalf("position 1 logits changed with a future token")
		}
	}
}

// TestINT8ModeRoutesThroughTDPBUSD: quantized mode dispatches every
// parameter sublayer through the INT8 pipeline, leaving attention on the
// policy-routed BF16 path.
func TestINT8ModeRoutesThroughTDPBUSD(t *testing.T) {
	m := tinyModel(t)
	e := NewExecutor(m, core.FullGPU)
	e.EnableINT8()
	if !e.INT8() {
		t.Fatal("INT8 mode not reported")
	}
	if _, _, err := e.Prefill([]int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	cfg := m.Cfg
	wantInt8 := 4 * cfg.Layers // QKV, OutProj, FC1, FC2 per layer
	if e.Stats.Int8Matmuls != wantInt8 {
		t.Errorf("int8 matmuls = %d, want %d", e.Stats.Int8Matmuls, wantInt8)
	}
	// Attention still runs on the (GPU) dense path, one fused dispatch
	// pair per KV head.
	wantGPU := 2 * cfg.KVHeads * cfg.Layers
	if e.Stats.GPUMatmuls != wantGPU {
		t.Errorf("dense matmuls = %d, want %d", e.Stats.GPUMatmuls, wantGPU)
	}
	if e.Stats.AMXCycles == 0 {
		t.Error("TDPBUSD cycles not recorded")
	}
}

// TestINT8LogitsCloseToBF16: W8A8 quantization perturbs the logits only
// slightly on the tiny model.
func TestINT8LogitsCloseToBF16(t *testing.T) {
	m := tinyModel(t)
	prompt := []int{5, 17, 42}
	ref, _, err := NewExecutor(m, core.FullGPU).Prefill(prompt)
	if err != nil {
		t.Fatal(err)
	}
	q := NewExecutor(m, core.FullGPU)
	q.EnableINT8()
	got, _, err := q.Prefill(prompt)
	if err != nil {
		t.Fatal(err)
	}
	var refMag, worst float64
	for i := range ref.Data {
		refMag = math.Max(refMag, math.Abs(float64(ref.Data[i])))
		worst = math.Max(worst, math.Abs(float64(ref.Data[i]-got.Data[i])))
	}
	if worst > 0.1*refMag {
		t.Errorf("max logit deviation %v vs magnitude %v (>10%%)", worst, refMag)
	}
}

// TestINT8GenerationRuns: quantized greedy decoding completes and stays
// in-vocabulary; with the tiny model it matches the BF16 tokens.
func TestINT8GenerationRuns(t *testing.T) {
	m := tinyModel(t)
	prompt := []int{12, 7, 88}
	ref, err := NewExecutor(m, core.FullGPU).Generate(prompt, 10)
	if err != nil {
		t.Fatal(err)
	}
	q := NewExecutor(m, core.FullGPU)
	q.EnableINT8()
	got, err := q.Generate(prompt, 10)
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for i := range ref {
		if got[i] < 0 || got[i] >= m.Cfg.VocabSize {
			t.Fatalf("token %d out of vocabulary", got[i])
		}
		if got[i] == ref[i] {
			agree++
		}
	}
	if agree < len(ref)*7/10 {
		t.Errorf("only %d/%d tokens agree with BF16", agree, len(ref))
	}
}

func tinyLlama(t *testing.T) *Model {
	t.Helper()
	m, err := NewRandom(TinyLlamaConfig(), 42)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestGQACacheIsSmaller: grouped-query attention shrinks the KV cache by
// Heads/KVHeads — the structural property §7.7's Llama2 rows depend on.
func TestGQACacheIsSmaller(t *testing.T) {
	m := tinyLlama(t)
	e := NewExecutor(m, core.FullGPU)
	_, cache, err := e.Prefill([]int{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	wantWidth := m.Cfg.KVDim()
	if cache.K[0].Cols != wantWidth {
		t.Errorf("cache width %d, want %d", cache.K[0].Cols, wantWidth)
	}
	if wantWidth >= m.Cfg.DModel {
		t.Error("GQA cache should be narrower than d_model")
	}
}

// TestGQAGeneratesAndIsPolicyInvariant: the Llama-style tiny model runs
// under every policy with identical greedy tokens.
func TestGQAGeneratesAndIsPolicyInvariant(t *testing.T) {
	m := tinyLlama(t)
	prompt := []int{9, 33, 71}
	ref, err := NewExecutor(m, core.FullGPU).Generate(prompt, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []core.Policy{core.FullCPU, core.PartialCPU} {
		got, err := NewExecutor(m, p).Generate(prompt, 10)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("policy %s diverged: %v vs %v", p, got, ref)
			}
		}
	}
}

// TestGatedFFNShapes: the gated model's FC1 carries gate+up (2·DFF wide)
// and still decodes incrementally.
func TestGatedFFNShapes(t *testing.T) {
	m := tinyLlama(t)
	if m.Layers[0].WFC1.Cols != 2*m.Cfg.DFF {
		t.Fatalf("gated FC1 width %d, want %d", m.Layers[0].WFC1.Cols, 2*m.Cfg.DFF)
	}
	e := NewExecutor(m, core.FullGPU)
	_, cache, err := e.Prefill([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.DecodeStep(cache, 3); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 3 {
		t.Errorf("cache length %d after decode, want 3", cache.Len())
	}
}

// TestGQAIncrementalMatchesRecompute mirrors the MHA consistency test on
// the grouped-query architecture.
func TestGQAIncrementalMatchesRecompute(t *testing.T) {
	m := tinyLlama(t)
	e := NewExecutor(m, core.FullGPU)
	prompt := []int{3, 14, 15}
	_, cache, err := e.Prefill(prompt)
	if err != nil {
		t.Fatal(err)
	}
	step, err := e.DecodeStep(cache, 65)
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := e.Prefill(append(append([]int{}, prompt...), 65))
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < full.Cols; c++ {
		diff := math.Abs(float64(step.At(0, c) - full.At(full.Rows-1, c)))
		if diff > 2e-3 {
			t.Fatalf("logit %d differs: %v vs %v", c, step.At(0, c), full.At(full.Rows-1, c))
		}
	}
}

// TestGQAInt8Mode: quantized mode works with the gated architecture too.
func TestGQAInt8Mode(t *testing.T) {
	m := tinyLlama(t)
	e := NewExecutor(m, core.FullGPU)
	e.EnableINT8()
	out, err := e.Generate([]int{5, 6, 7}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 8 {
		t.Fatalf("generated %d tokens", len(out))
	}
	if e.Stats.Int8Matmuls == 0 {
		t.Error("INT8 path not exercised")
	}
}

func TestGenerateBatch(t *testing.T) {
	m := tinyModel(t)
	e := NewExecutor(m, core.PartialCPU)
	prompts := [][]int{{1, 2, 3}, {50, 60}, {7}}
	outs, err := e.GenerateBatch(prompts, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 3 {
		t.Fatalf("%d outputs", len(outs))
	}
	// Batch results match individual generation (independent KV caches).
	for i, prompt := range prompts {
		solo, err := NewExecutor(m, core.PartialCPU).Generate(prompt, 6)
		if err != nil {
			t.Fatal(err)
		}
		for j := range solo {
			if outs[i][j] != solo[j] {
				t.Fatalf("sequence %d diverged from solo run", i)
			}
		}
	}
	if _, err := e.GenerateBatch(nil, 4); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := e.GenerateBatch([][]int{{1}, {9999}}, 4); err == nil {
		t.Error("bad token in batch accepted")
	}
}

// TestRoPERotationProperties: rotation preserves norms, leaves position 0
// untouched, and moves later positions.
func TestRoPERotationProperties(t *testing.T) {
	const dh = 8
	m := tensor.New(3, 2*dh) // 2 heads, 3 positions
	for i := range m.Data {
		m.Data[i] = float32(i%5) - 2
	}
	orig := m.Clone()
	applyRoPE(m, dh, 0)
	// Position 0: theta = 0 everywhere → unchanged.
	for c := 0; c < m.Cols; c++ {
		if m.At(0, c) != orig.At(0, c) {
			t.Fatalf("position 0 changed at col %d", c)
		}
	}
	// Later positions change but preserve per-pair norms.
	changed := false
	for r := 1; r < 3; r++ {
		for c := 0; c < m.Cols; c += 2 {
			if m.At(r, c) != orig.At(r, c) {
				changed = true
			}
			n0 := float64(orig.At(r, c))*float64(orig.At(r, c)) + float64(orig.At(r, c+1))*float64(orig.At(r, c+1))
			n1 := float64(m.At(r, c))*float64(m.At(r, c)) + float64(m.At(r, c+1))*float64(m.At(r, c+1))
			if math.Abs(n0-n1) > 1e-4*(n0+1) {
				t.Fatalf("pair norm changed at (%d,%d): %v vs %v", r, c, n0, n1)
			}
		}
	}
	if !changed {
		t.Fatal("rotation did nothing at positions > 0")
	}
}

// TestRoPEDecodeMatchesRecompute: with rotary positions, incremental
// decoding (rotating fresh keys at their absolute offsets) agrees with a
// full recompute.
func TestRoPEDecodeMatchesRecompute(t *testing.T) {
	m := tinyLlama(t)
	if !m.Cfg.RoPE {
		t.Fatal("tiny llama should use RoPE")
	}
	e := NewExecutor(m, core.FullGPU)
	prompt := []int{3, 14, 15}
	_, cache, err := e.Prefill(prompt)
	if err != nil {
		t.Fatal(err)
	}
	step, err := e.DecodeStep(cache, 65)
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := e.Prefill(append(append([]int{}, prompt...), 65))
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < full.Cols; c++ {
		diff := math.Abs(float64(step.At(0, c) - full.At(full.Rows-1, c)))
		if diff > 2e-3 {
			t.Fatalf("RoPE logit %d differs: %v vs %v", c, step.At(0, c), full.At(full.Rows-1, c))
		}
	}
}

// TestRoPEPositionsMatter: permuting the prompt changes the last-position
// logits (position information flows through the rotation, not a table).
func TestRoPEPositionsMatter(t *testing.T) {
	m := tinyLlama(t)
	e := NewExecutor(m, core.FullGPU)
	l1, _, err := e.Prefill([]int{10, 20, 30, 40})
	if err != nil {
		t.Fatal(err)
	}
	l2, _, err := e.Prefill([]int{30, 20, 10, 40})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for c := 0; c < l1.Cols; c++ {
		if l1.At(l1.Rows-1, c) != l2.At(l2.Rows-1, c) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("reordering the prompt should change the logits under RoPE")
	}
}
