package llm

import (
	"fmt"

	"github.com/lia-sim/lia/internal/model"
)

// NewSequenceChunked is NewSequence with the prompt prefilled in fixed-
// size chunks instead of one monolithic pass — the Sarathi-style
// mechanism that lets the scheduler interleave long-prompt prefill with
// decode rounds so a long arrival stops stalling everyone else's
// inter-token latency. The constructor only validates and seeds the
// cache; drive AdvancePrefill until it reports done (one call per
// scheduling round), then Step/SpecStep as usual.
//
// Chunked prefill is bit-identical to the monolithic pass for the same
// reason PrefillFrom is: each chunk is a cache-resumed causally-masked
// pass whose rows see exactly the positions the full prefill would
// (kernels are row-independent, RoPE rotates by absolute position).
// Degenerate chunk sizes fall back to a monolithic PrefillFrom: chunk
// ≤ 0, or chunk ≥ the uncached prompt remainder (nothing to split).
// INT8 mode also falls back — per-tensor activation scales couple all
// rows of a pass, so splitting the prompt would change the numerics
// (the same argument PrefillFrom documents).
//
// seed resumes from a cached KV prefix exactly as NewSequenceFrom does;
// chunking applies to the uncached remainder.
func (e *Executor) NewSequenceChunked(prompt []int, n, chunk int, seed *KVSeed) (*Sequence, error) {
	if n < 1 {
		return nil, fmt.Errorf("llm: sequence must emit at least one token, got %d", n)
	}
	if len(prompt)+n-1 > e.Model.Cfg.MaxSeqLen {
		return nil, fmt.Errorf("llm: prompt %d + %d generated tokens exceeds max sequence length %d",
			len(prompt), n, e.Model.Cfg.MaxSeqLen)
	}
	cached := seed.Tokens()
	if e.int8 != nil || chunk <= 0 || chunk >= len(prompt)-cached {
		return e.NewSequenceFrom(prompt, n, seed)
	}
	if seed != nil {
		if err := seed.validate(len(e.Model.Layers), e.Model.Cfg.KVDim()); err != nil {
			return nil, err
		}
	}
	sub := e.fork()
	cache := sub.NewCache()
	if seed != nil {
		for _, seg := range seed.Segments {
			for li := range e.Model.Layers {
				cache.Append(li, seg.K[li], seg.V[li])
			}
		}
	}
	return &Sequence{
		e:          sub,
		cache:      cache,
		pending:    -1, // undefined until the last chunk computes it
		out:        make([]int, 0, n),
		target:     n,
		prompt:     prompt,
		prefillPos: cached,
		chunk:      chunk,
	}, nil
}

// Prefilling reports whether prompt chunks remain to be computed. Step
// and SpecStep reject a prefilling sequence; drive AdvancePrefill first.
func (s *Sequence) Prefilling() bool { return s.prefillPos < len(s.prompt) }

// PrefillPos returns how many prompt tokens are prefilled so far.
func (s *Sequence) PrefillPos() int { return s.prefillPos }

// AdvancePrefill computes the next prompt chunk through a cache-resumed
// causal pass, reporting true once the prompt is fully prefilled (the
// call that finishes also computes the first pending token, so TTFT is
// the moment AdvancePrefill first returns true). Calling it on a ready
// sequence is a no-op returning true.
func (s *Sequence) AdvancePrefill() (bool, error) {
	if !s.Prefilling() {
		return true, nil
	}
	end := s.prefillPos + s.chunk
	if end > len(s.prompt) {
		end = len(s.prompt)
	}
	x, err := s.e.extend(s.cache, s.prompt[s.prefillPos:end], model.Prefill)
	if err != nil {
		return false, err
	}
	s.prefillPos = end
	if s.prefillPos < len(s.prompt) {
		return false, nil
	}
	// Last chunk: only now is the LM head worth paying for.
	logits := s.e.logits(x)
	s.pending = logits.ArgmaxRow(logits.Rows - 1)
	return true, nil
}
