package llm

import (
	"fmt"

	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/tensor"
)

// Truncate rolls the cache back to its first n rows — the speculative
// verifier's rejection path: proposed tokens past the accepted prefix
// had their K/V rows appended by the verify pass and must be discarded
// before the next round. Row counts shrink in place (the backing arrays
// keep their capacity, so later Appends still land without copying);
// the kT mirror's columns beyond n go stale, which is harmless because
// attention reads only the first Len() columns and the next Append
// overwrites exactly the stale region.
//
// Truncate is not signalled to an attached MemHost — the speculative
// path is gated to run without one (see EnableSpec).
func (c *KVCache) Truncate(n int) {
	if n < 0 || n > c.Len() {
		panic(fmt.Sprintf("llm: truncate to %d rows outside cache of %d", n, c.Len()))
	}
	if n == c.Len() {
		return
	}
	for li := range c.K {
		cols := c.K[li].Cols
		c.K[li] = tensor.FromSlice(n, cols, c.K[li].Data[:n*cols])
		c.V[li] = tensor.FromSlice(n, cols, c.V[li].Data[:n*cols])
	}
}

// extend runs one cache-resumed, causally-masked multi-row forward pass
// over tokens (placed at the positions right after the cache's current
// contents), appends their K/V rows, and returns the final hidden
// states. It is the shared primitive under Prefill-style resumption:
// VerifyStep layers the LM head on top, chunked prefill calls it once
// per chunk (skipping the head until the last chunk).
func (e *Executor) extend(cache *KVCache, tokens []int, stage model.Stage) (tensor.Matrix, error) {
	past := cache.Len()
	x, err := e.embed(tokens, past)
	if err != nil {
		return tensor.Matrix{}, err
	}
	e.beginPass(cache, stage, len(tokens), past)
	for li := range e.Model.Layers {
		x = e.forwardLayer(li, x, cache, true)
	}
	e.endPass()
	return x, nil
}

// VerifyStep scores len(tokens) consecutive positions in one
// cache-resumed pass — Prefill's multi-row causal masking applied
// mid-stream. Row i of the returned logits is bit-identical (on the
// BF16 path) to the logits DecodeStep would return after feeding
// tokens[:i+1] one by one: the AMX and dense kernels compute each
// output row from its input row alone, LayerNorm/softmax/bias/
// activations are row-wise, the causal mask restricts row i to exactly
// the positions sequential decode sees, and RoPE rotates by absolute
// position. That equivalence is what makes greedy speculative
// acceptance exact (Sequence.SpecStep) and chunked prefill lossless
// (Sequence.AdvancePrefill).
//
// The pass appends all len(tokens) K/V rows; callers that keep only a
// prefix (speculative rejection) roll the rest back with
// KVCache.Truncate. Under INT8 the pass still computes, but its
// per-tensor activation scales span all rows, so row i is NOT
// bit-identical to sequential decode — the speculative and chunked
// paths fall back to sequential execution there instead of calling
// this.
func (e *Executor) VerifyStep(cache *KVCache, tokens []int) (tensor.Matrix, error) {
	if cache == nil {
		return tensor.Matrix{}, fmt.Errorf("llm: verify on nil cache")
	}
	if len(tokens) == 0 {
		return tensor.Matrix{}, fmt.Errorf("llm: empty verify batch")
	}
	x, err := e.extend(cache, tokens, model.Decode)
	if err != nil {
		return tensor.Matrix{}, err
	}
	return e.logits(x), nil
}
