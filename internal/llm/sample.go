package llm

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/lia-sim/lia/internal/tensor"
)

// Sampler selects the next token from a logit row. Implementations must
// be deterministic given their own state (seeded RNGs).
type Sampler interface {
	// Sample returns a token index given the vocabulary logits.
	Sample(logits []float32) int
}

// GreedySampler picks the argmax — the decoding the paper's latency
// benchmarks use.
type GreedySampler struct{}

// Sample implements Sampler.
func (GreedySampler) Sample(logits []float32) int {
	best, bestV := 0, float32(math.Inf(-1))
	for i, v := range logits {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// TopKSampler samples from the K most likely tokens after temperature
// scaling — the stochastic decoding interactive applications use.
type TopKSampler struct {
	// K bounds the candidate set (≥1).
	K int
	// Temperature scales the logits (>0; 1 = unscaled).
	Temperature float64
	rng         *rand.Rand
}

// NewTopKSampler builds a deterministic top-K sampler.
func NewTopKSampler(k int, temperature float64, seed int64) (*TopKSampler, error) {
	if k < 1 {
		return nil, fmt.Errorf("llm: top-k sampler needs K ≥ 1, got %d", k)
	}
	if temperature <= 0 {
		return nil, fmt.Errorf("llm: temperature must be positive, got %v", temperature)
	}
	return &TopKSampler{K: k, Temperature: temperature, rng: rand.New(rand.NewSource(seed))}, nil
}

// Sample implements Sampler.
func (s *TopKSampler) Sample(logits []float32) int {
	type cand struct {
		idx int
		v   float64
	}
	cands := make([]cand, len(logits))
	for i, v := range logits {
		cands[i] = cand{i, float64(v) / s.Temperature}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].v > cands[b].v })
	k := s.K
	if k > len(cands) {
		k = len(cands)
	}
	cands = cands[:k]
	// Stable softmax over the candidates.
	maxV := cands[0].v
	var sum float64
	weights := make([]float64, k)
	for i, c := range cands {
		w := math.Exp(c.v - maxV)
		weights[i] = w
		sum += w
	}
	r := s.rng.Float64() * sum
	for i, w := range weights {
		r -= w
		if r <= 0 {
			return cands[i].idx
		}
	}
	return cands[k-1].idx
}

// GenerateWith decodes n tokens after the prompt using the sampler
// (Generate is GenerateWith(GreedySampler{})).
func (e *Executor) GenerateWith(prompt []int, n int, s Sampler) ([]int, error) {
	if s == nil {
		s = GreedySampler{}
	}
	logits, cache, err := e.Prefill(prompt)
	if err != nil {
		return nil, err
	}
	out := make([]int, 0, n)
	next := s.Sample(logits.Row(logits.Rows - 1))
	for i := 0; i < n; i++ {
		out = append(out, next)
		if i == n-1 {
			break
		}
		var step tensor.Matrix
		step, err = e.DecodeStep(cache, next)
		if err != nil {
			return nil, err
		}
		next = s.Sample(step.Row(0))
	}
	return out, nil
}

// Divergence compares two executors over the same model family: the mean
// across prompts of the maximum relative logit deviation at the last
// position, and the fraction of prompts whose greedy (top-1) token
// agrees. It is the functional accuracy proxy for quantization and
// kernel-substitution studies.
func Divergence(a, b *Executor, prompts [][]int) (meanMaxRel, top1Agreement float64, err error) {
	if len(prompts) == 0 {
		return 0, 0, fmt.Errorf("llm: no prompts")
	}
	agree := 0
	for _, prompt := range prompts {
		la, _, err := a.Prefill(prompt)
		if err != nil {
			return 0, 0, err
		}
		lb, _, err := b.Prefill(prompt)
		if err != nil {
			return 0, 0, err
		}
		rowA := la.Row(la.Rows - 1)
		rowB := lb.Row(lb.Rows - 1)
		var scale, worst float64
		for i := range rowA {
			if m := math.Abs(float64(rowA[i])); m > scale {
				scale = m
			}
		}
		if scale == 0 {
			scale = 1
		}
		for i := range rowA {
			d := math.Abs(float64(rowA[i]-rowB[i])) / scale
			if d > worst {
				worst = d
			}
		}
		meanMaxRel += worst
		if la.ArgmaxRow(la.Rows-1) == lb.ArgmaxRow(lb.Rows-1) {
			agree++
		}
	}
	meanMaxRel /= float64(len(prompts))
	top1Agreement = float64(agree) / float64(len(prompts))
	return meanMaxRel, top1Agreement, nil
}
