package llm

import (
	"testing"

	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/quant"
)

// prunedModelINT8 prunes every parameter matrix at the INT8 tile
// granularity — the dense-INT8 reference the sparse-INT8 tier must
// match bit-for-bit.
func prunedModelINT8(m *Model, sparsity float64) *Model {
	out := *m
	out.Layers = append([]LayerWeights(nil), m.Layers...)
	for i := range out.Layers {
		l := &out.Layers[i]
		l.WQKV, _ = quant.PruneBlocksINT8(l.WQKV, sparsity)
		l.WOut, _ = quant.PruneBlocksINT8(l.WOut, sparsity)
		l.WFC1, _ = quant.PruneBlocksINT8(l.WFC1, sparsity)
		l.WFC2, _ = quant.PruneBlocksINT8(l.WFC2, sparsity)
	}
	return &out
}

// The satellite contract: the zero-block bitmap skip on the TDPBUSD
// prepacked image is an elision, not an approximation. A sparse-INT8
// executor produces bit-identical tokens to a dense-INT8 executor
// running the same pruned weights (a pruned element quantizes to code 0
// exactly, and a zero integer block contributes +0 to every
// accumulator).
func TestSparseINT8BitIdenticalToDenseINT8OnPrunedWeights(t *testing.T) {
	m := tinyModel(t)
	prompt := []int{3, 14, 15, 92}
	const sparsity = 0.5
	for _, p := range []core.Policy{core.FullCPU, core.FullGPU, core.PartialCPU} {
		refExec := NewExecutor(prunedModelINT8(m, sparsity), p)
		refExec.EnableINT8()
		ref, err := refExec.Generate(prompt, 12)
		if err != nil {
			t.Fatal(err)
		}
		e := NewExecutor(m, p)
		e.EnableSparseINT8(sparsity)
		if !e.SparseINT8() || e.QuantTier() != "sparse-int8" {
			t.Fatal("sparse-int8 tier not reported")
		}
		got, err := e.Generate(prompt, 12)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("policy %s: sparse-int8 tokens diverged at %d: %v vs %v", p, i, got, ref)
			}
		}
	}
}

func TestSparseINT8StatsAndFootprint(t *testing.T) {
	m := tinyModel(t)
	dense := NewExecutor(m, core.FullCPU)
	dense.EnableINT8()
	denseBytes := dense.WeightFootprint()

	e := NewExecutor(m, core.FullCPU)
	e.EnableSparseINT8(0.5)
	if _, _, err := e.Prefill([]int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if want := 4 * m.Cfg.Layers; e.Stats.SparseMatmuls != want {
		t.Errorf("sparse matmuls = %d, want %d", e.Stats.SparseMatmuls, want)
	}
	if e.Stats.SparseBlocksSkipped == 0 {
		t.Error("no blocks skipped at 50% sparsity")
	}
	if got := e.WeightFootprint(); got >= denseBytes {
		t.Errorf("sparse-int8 footprint %d not below dense int8 %d", got, denseBytes)
	}
	if f := e.SparseSkipFraction(); f < 0.4 || f > 0.7 {
		t.Errorf("skip fraction %v, want ≈0.5", f)
	}
}

// sparse-int8 replaces the other tiers and is replaced by them.
func TestSparseINT8MutuallyExclusive(t *testing.T) {
	e := NewExecutor(tinyModel(t), core.FullGPU)
	e.EnableSparse(0.25)
	e.EnableSparseINT8(0.5)
	if e.Sparse() || e.INT4() || !e.SparseINT8() {
		t.Fatal("EnableSparseINT8 must clear other tiers")
	}
	e.EnableINT8()
	if e.SparseINT8() || e.QuantTier() != "int8" {
		t.Fatal("EnableINT8 must clear the sparse-int8 marker")
	}
	e.EnableSparseINT8(0.5)
	e.EnableINT4LUT(0)
	if e.SparseINT8() || !e.INT4() {
		t.Fatal("EnableINT4LUT must clear sparse-int8")
	}
}
