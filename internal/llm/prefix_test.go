package llm

import (
	"encoding/json"
	"os"
	"reflect"
	"testing"

	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/tensor"
)

// seedFor prefills the prompt's first `cached` tokens on a donor fork and
// exports them as a two-segment seed (exercising the multi-node path the
// radix tree produces), or one segment when cached < 2.
func seedFor(t *testing.T, e *Executor, prompt []int, cached int) *KVSeed {
	t.Helper()
	donor := e.fork()
	_, cache, err := donor.Prefill(prompt[:cached])
	if err != nil {
		t.Fatal(err)
	}
	defer donor.RetireCache(cache)
	var seed KVSeed
	bounds := []int{0, cached}
	if cached >= 2 {
		bounds = []int{0, cached / 2, cached}
	}
	for i := 1; i < len(bounds); i++ {
		seg, err := donor.ExportKV(cache, bounds[i-1], bounds[i])
		if err != nil {
			t.Fatal(err)
		}
		seed.Segments = append(seed.Segments, seg)
	}
	return &seed
}

// seqTokens drains a sequence.
func seqTokens(t *testing.T, s *Sequence) []int {
	t.Helper()
	for !s.Done() {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	s.Release()
	return s.Output()
}

// TestPrefixSeededGoldenCorpus replays the full golden corpus through the
// resume-from-cached-length path: every (architecture, policy, precision)
// case generates with a KV seed covering all but the prompt's last token
// and must emit tokens bit-identical to the recorded seed-implementation
// output. On BF16 this proves the compute skip changes no value (the
// kernels are row-independent, masking and RoPE are absolute-position);
// on INT8 it proves the documented fallback to full prefill engages
// (per-tensor activation quantization couples rows across the pass, so a
// skipped prefix would diverge).
func TestPrefixSeededGoldenCorpus(t *testing.T) {
	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file: %v", err)
	}
	var golden map[string][]int
	if err := json.Unmarshal(buf, &golden); err != nil {
		t.Fatal(err)
	}

	optM, err := NewRandom(TinyConfig(), 42)
	if err != nil {
		t.Fatal(err)
	}
	llamaM, err := NewRandom(TinyLlamaConfig(), 42)
	if err != nil {
		t.Fatal(err)
	}
	archs := []struct {
		name   string
		m      *Model
		prompt []int
	}{
		{"tiny-opt", optM, []int{5, 17, 42, 9, 63}},
		{"tiny-llama", llamaM, []int{9, 33, 71}},
	}
	policies := core.AllPolicies()
	if testing.Short() {
		policies = []core.Policy{core.FullGPU, core.FullCPU, core.PartialCPU, core.MoEPartial}
	}
	checked := 0
	for _, a := range archs {
		for _, p := range policies {
			for _, int8Mode := range []bool{false, true} {
				key := goldenKey(a.name, p, int8Mode)
				want, ok := golden[key]
				if !ok {
					t.Fatalf("no golden tokens for %s", key)
				}
				e := NewExecutor(a.m, p)
				if int8Mode {
					e.EnableINT8()
				}
				seed := seedFor(t, e, a.prompt, len(a.prompt)-1)
				seq, err := e.NewSequenceFrom(a.prompt, 12, seed)
				if err != nil {
					t.Fatalf("%s: %v", key, err)
				}
				if got := seqTokens(t, seq); !reflect.DeepEqual(got, want) {
					t.Errorf("%s: seeded generation diverged from golden corpus:\n got %v\nwant %v", key, got, want)
				}
				checked++
			}
		}
	}
	if !testing.Short() && checked != len(golden) {
		t.Fatalf("checked %d cases, corpus has %d", checked, len(golden))
	}
}

// TestPrefillFromMatchesPrefill pins the strongest form of the identity:
// not just tokens but the last-position logits and the full cache
// contents match a cold prefill, for every seed split point.
func TestPrefillFromMatchesPrefill(t *testing.T) {
	m, err := NewRandom(TinyLlamaConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	prompt := []int{9, 33, 71, 14, 2, 55}
	e := NewExecutor(m, core.PartialCPU)
	wantLogits, wantCache, err := e.fork().Prefill(prompt)
	if err != nil {
		t.Fatal(err)
	}
	for cached := 1; cached < len(prompt); cached++ {
		seed := seedFor(t, e, prompt, cached)
		gotLogits, gotCache, err := e.fork().PrefillFrom(prompt, seed)
		if err != nil {
			t.Fatalf("cached=%d: %v", cached, err)
		}
		if !reflect.DeepEqual(gotLogits.Row(gotLogits.Rows-1), wantLogits.Row(wantLogits.Rows-1)) {
			t.Errorf("cached=%d: last-position logits diverged", cached)
		}
		for li := range m.Layers {
			if !reflect.DeepEqual(gotCache.K[li].Data[:len(prompt)*m.Cfg.KVDim()],
				wantCache.K[li].Data[:len(prompt)*m.Cfg.KVDim()]) {
				t.Errorf("cached=%d layer %d: K cache diverged", cached, li)
			}
			if !reflect.DeepEqual(gotCache.V[li].Data[:len(prompt)*m.Cfg.KVDim()],
				wantCache.V[li].Data[:len(prompt)*m.Cfg.KVDim()]) {
				t.Errorf("cached=%d layer %d: V cache diverged", cached, li)
			}
		}
	}
}

func TestPrefillFromValidation(t *testing.T) {
	m, err := NewRandom(TinyConfig(), 42)
	if err != nil {
		t.Fatal(err)
	}
	e := NewExecutor(m, core.FullGPU)
	prompt := []int{5, 17, 42, 9, 63}
	full := seedFor(t, e, prompt, len(prompt)-1)

	// Nil and empty seeds are plain prefill.
	if _, cache, err := e.PrefillFrom(prompt, nil); err != nil || cache.Len() != len(prompt) {
		t.Fatalf("nil seed: cache=%v err=%v", cache.Len(), err)
	}
	if _, _, err := e.PrefillFrom(nil, nil); err == nil {
		t.Error("empty prompt accepted")
	}
	// A seed covering the whole prompt leaves nothing to compute.
	whole := seedFor(t, e, append(prompt, 3), len(prompt))
	if _, _, err := e.PrefillFrom(prompt, whole); err == nil {
		t.Error("seed covering the whole prompt accepted")
	}
	// Shape mismatches are rejected.
	bad := &KVSeed{Segments: []KVSegment{{
		K: []tensor.Matrix{tensor.New(2, 3)},
		V: []tensor.Matrix{tensor.New(2, 3)},
	}}}
	if _, _, err := e.PrefillFrom(prompt, bad); err == nil {
		t.Error("seed with wrong layer count accepted")
	}
	wrongWidth := &KVSeed{Segments: []KVSegment{{
		K: []tensor.Matrix{tensor.New(2, 3), tensor.New(2, 3)},
		V: []tensor.Matrix{tensor.New(2, 3), tensor.New(2, 3)},
	}}}
	if _, _, err := e.PrefillFrom(prompt, wrongWidth); err == nil {
		t.Error("seed with wrong KV width accepted")
	}
	// INT8 mode silently falls back to a full prefill and still works.
	e8 := NewExecutor(m, core.FullGPU)
	e8.EnableINT8()
	if _, cache, err := e8.PrefillFrom(prompt, full); err != nil || cache.Len() != len(prompt) {
		t.Fatalf("int8 fallback: cache=%v err=%v", cache.Len(), err)
	}
}

func TestExportKVBounds(t *testing.T) {
	m, err := NewRandom(TinyConfig(), 42)
	if err != nil {
		t.Fatal(err)
	}
	e := NewExecutor(m, core.FullGPU)
	_, cache, err := e.Prefill([]int{5, 17, 42})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ExportKV(cache, 0, 4); err == nil {
		t.Error("export past cache length accepted")
	}
	if _, err := e.ExportKV(cache, 2, 2); err == nil {
		t.Error("empty export range accepted")
	}
	if _, err := e.ExportKV(nil, 0, 1); err == nil {
		t.Error("nil cache accepted")
	}
	seg, err := e.ExportKV(cache, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if seg.Tokens() != 2 || len(seg.K) != len(m.Layers) {
		t.Fatalf("segment %d tokens, %d layers", seg.Tokens(), len(seg.K))
	}
	// The export is a deep copy: mutating it must not touch the cache.
	orig := cache.K[0].At(1, 0)
	seg.K[0].Set(0, 0, orig+1)
	if cache.K[0].At(1, 0) != orig {
		t.Error("ExportKV aliased the live cache")
	}
}
