// Speculative decoding on the functional engine: a cheap draft model
// proposes γ tokens per round and the target scores them all in one
// multi-row VerifyStep pass — the "score γ+1 positions for nearly the
// price of one" economics LIA's Figure 3 identifies on per-pass-
// dominated hardware, which internal/spec prices analytically. Greedy
// acceptance keeps the emitted stream provably bit-identical to
// token-by-token decode: a proposal is accepted only when it EQUALS the
// target's own argmax at that position, and the first disagreement is
// replaced by that argmax, so every emitted token is the target's
// sequential greedy choice by induction (VerifyStep row i ==
// DecodeStep-after-tokens[:i+1], see verify.go).
package llm

import "fmt"

// SpecStats counts what the speculative loop did. AcceptanceRate and
// TokensPerRound are the empirical counterparts of internal/spec's
// analytic α and E[tokens/round]; the cross-validation test compares
// them.
type SpecStats struct {
	// Rounds counts draft-and-verify rounds (PlainSteps counts the
	// single-token fallback steps taken when the per-round budget or the
	// sequence tail left no room to draft).
	Rounds     int
	PlainSteps int
	// Drafted and Accepted count proposed tokens and the ones that
	// matched the target's argmax.
	Drafted  int
	Accepted int
	// Emitted counts tokens emitted through SpecStep.
	Emitted int
}

// AcceptanceRate returns the empirical per-token acceptance probability
// α̂ = Accepted/Drafted (0 before any drafting).
func (s SpecStats) AcceptanceRate() float64 {
	if s.Drafted == 0 {
		return 0
	}
	return float64(s.Accepted) / float64(s.Drafted)
}

// TokensPerRound returns the mean tokens emitted per verify round
// (1 + Accepted/Rounds): each round emits the held pending token plus
// its accepted proposals. 0 before any rounds.
func (s SpecStats) TokensPerRound() float64 {
	if s.Rounds == 0 {
		return 0
	}
	return 1 + float64(s.Accepted)/float64(s.Rounds)
}

// specState is a sequence's attached draft: a forked draft executor,
// the draft's own KV cache over the confirmed stream, and the round
// accounting.
type specState struct {
	draft  *Executor
	dcache *KVCache
	gamma  int
	stats  SpecStats
	// drafts and vfeed are per-round scratch (proposals; verify input).
	drafts []int
	vfeed  []int
}

// DraftModel derives a shallow draft from a target model: the first
// `layers` decoder layers wrapped in the target's own embeddings,
// positional table and final norm. Sharing the weight matrices (they
// are immutable after construction) keeps the draft's argmax surface
// correlated with the target's — the property that makes acceptance
// rates non-trivial — while cutting per-token cost by the layer ratio.
func DraftModel(m *Model, layers int) (*Model, error) {
	if m == nil {
		return nil, fmt.Errorf("llm: draft of nil model")
	}
	if layers < 1 || layers > len(m.Layers) {
		return nil, fmt.Errorf("llm: draft depth %d outside [1, %d]", layers, len(m.Layers))
	}
	cfg := m.Cfg
	cfg.Layers = layers
	cfg.Name = fmt.Sprintf("%s-draft%d", cfg.Name, layers)
	return &Model{
		Cfg:       cfg,
		Embed:     m.Embed,
		Pos:       m.Pos,
		Layers:    m.Layers[:layers:layers],
		FinalGain: m.FinalGain,
		FinalBias: m.FinalBias,
	}, nil
}

// SpecEnabled reports whether the sequence decodes speculatively.
func (s *Sequence) SpecEnabled() bool { return s.spec != nil }

// SpecStats returns the sequence's speculative counters (zero when
// speculation is not enabled).
func (s *Sequence) SpecStats() SpecStats {
	if s.spec == nil {
		return SpecStats{}
	}
	return s.spec.stats
}

// EnableSpec attaches a draft executor so subsequent SpecStep calls
// decode speculatively. The draft is forked (private stats/scratch) and
// prefilled over the confirmed stream so far. Call it once, after
// prefill completes (for chunked sequences: after AdvancePrefill
// reports done) and before the sequence finishes.
//
// Both executors must be on the BF16 path without a memory host: INT8's
// per-pass activation scales break the multi-row == sequential
// equivalence the acceptance rule relies on, and a MemHost is not told
// about the verify pass's speculative row rollbacks. Callers wanting
// those modes keep plain Step (the gateway validates this up front).
func (s *Sequence) EnableSpec(draft *Executor, gamma int) error {
	if s.spec != nil {
		return fmt.Errorf("llm: speculation already enabled")
	}
	if draft == nil {
		return fmt.Errorf("llm: nil draft executor")
	}
	if gamma < 1 {
		return fmt.Errorf("llm: speculative depth γ must be ≥1, got %d", gamma)
	}
	if s.Prefilling() {
		return fmt.Errorf("llm: enable speculation after prefill completes")
	}
	if s.Done() {
		return fmt.Errorf("llm: sequence already finished")
	}
	tcfg, dcfg := s.e.Model.Cfg, draft.Model.Cfg
	if dcfg.VocabSize != tcfg.VocabSize {
		return fmt.Errorf("llm: draft vocabulary %d != target %d", dcfg.VocabSize, tcfg.VocabSize)
	}
	if dcfg.MaxSeqLen < tcfg.MaxSeqLen {
		return fmt.Errorf("llm: draft max sequence %d < target %d", dcfg.MaxSeqLen, tcfg.MaxSeqLen)
	}
	if s.e.int8 != nil || draft.int8 != nil {
		return fmt.Errorf("llm: speculative decoding requires the BF16 path (INT8 activation scales are per-pass)")
	}
	if s.e.Mem != nil || draft.Mem != nil {
		return fmt.Errorf("llm: speculative decoding does not compose with a memory host")
	}
	sub := draft.fork()
	confirmed := make([]int, 0, len(s.prompt)+len(s.out))
	confirmed = append(confirmed, s.prompt...)
	confirmed = append(confirmed, s.out...)
	_, dcache, err := sub.Prefill(confirmed)
	if err != nil {
		return fmt.Errorf("llm: draft prefill: %w", err)
	}
	s.spec = &specState{draft: sub, dcache: dcache, gamma: gamma}
	return nil
}

// SpecStep emits the pending token and up to γ draft-verified
// successors in one target pass, returning how many tokens were emitted
// (≥1). The emitted stream is bit-identical to repeated Step calls.
//
// allow caps the KV rows this round may durably append (the scheduler's
// reservation budget): the round keeps at most allow rows, so at most
// allow-1 tokens are drafted. Values below 1 are treated as 1 — the
// pre-reserved decode slot always guarantees single-token progress.
// Pass the model's MaxSeqLen when unconstrained.
//
// One round: the held pending token t is emitted; the draft (lazily
// resynced to the confirmed stream) proposes p₁…p_γ'; the target scores
// [t, p₁…p_γ'] in one VerifyStep; the longest prefix with
// pᵢ == argmax(row i−1) is accepted, the next pending becomes
// argmax(row k) — the target's own choice at the first disagreement
// (or the bonus position) — and both caches roll back the rejected
// rows.
func (s *Sequence) SpecStep(allow int) (int, error) {
	if s.spec == nil {
		return 0, fmt.Errorf("llm: SpecStep without EnableSpec")
	}
	if s.Prefilling() {
		return 0, fmt.Errorf("llm: sequence is still prefilling (%d/%d prompt tokens)", s.prefillPos, len(s.prompt))
	}
	if s.Done() {
		return 0, fmt.Errorf("llm: sequence already emitted its %d tokens", s.target)
	}
	sp := s.spec
	tok := s.pending
	s.out = append(s.out, tok)
	sp.stats.Emitted++
	if s.Done() {
		// Final token: the last decode is skipped exactly as Step skips it.
		return 1, nil
	}

	past := s.cache.Len() // rows for prompt + out[:len(out)-1]
	g := sp.gamma
	if r := s.target - len(s.out); g > r {
		g = r
	}
	if a := allow - 1; g > a {
		g = a
	}
	if p := s.e.Model.Cfg.MaxSeqLen - 1 - past; g > p {
		g = p
	}
	if g < 1 {
		// No room to draft — plain sequential step.
		logits, err := s.e.DecodeStep(s.cache, tok)
		if err != nil {
			return 0, err
		}
		s.pending = logits.ArgmaxRow(0)
		sp.stats.PlainSteps++
		return 1, nil
	}

	// Draft proposal. The draft cache may trail the confirmed stream by
	// the tokens a previous fully-accepted round never fed it; the sync
	// rows ride along in the same multi-row pass as the emitted token.
	P := len(s.prompt)
	feed := s.out[sp.dcache.Len()-P:] // trailing confirmed tokens, ends with tok
	dlogits, err := sp.draft.VerifyStep(sp.dcache, feed)
	if err != nil {
		return 0, err
	}
	drafts := sp.drafts[:0]
	next := dlogits.ArgmaxRow(dlogits.Rows - 1)
	drafts = append(drafts, next)
	for len(drafts) < g {
		dl, err := sp.draft.DecodeStep(sp.dcache, next)
		if err != nil {
			return 0, err
		}
		next = dl.ArgmaxRow(0)
		drafts = append(drafts, next)
	}
	sp.drafts = drafts

	// Target verification: one pass scores the emitted token and every
	// proposal.
	vfeed := append(sp.vfeed[:0], tok)
	vfeed = append(vfeed, drafts...)
	sp.vfeed = vfeed
	logits, err := s.e.VerifyStep(s.cache, vfeed)
	if err != nil {
		return 0, err
	}
	k := 0
	for k < g && drafts[k] == logits.ArgmaxRow(k) {
		k++
	}
	s.pending = logits.ArgmaxRow(k)
	s.cache.Truncate(past + 1 + k)
	s.out = append(s.out, drafts[:k]...)
	sp.stats.Rounds++
	sp.stats.Drafted += g
	sp.stats.Accepted += k
	sp.stats.Emitted += k
	// Roll the draft back to the confirmed stream (rejected proposals
	// out; a fully-accepted round leaves it one token short, which the
	// next round's sync feed covers).
	if confirmed := P + len(s.out); sp.dcache.Len() > confirmed {
		sp.dcache.Truncate(confirmed)
	}
	return 1 + k, nil
}

// SpecGenerate greedily decodes n tokens after the prompt with
// draft-and-verify speculative decoding — bit-identical to
// Generate(prompt, n), typically in far fewer target passes. It returns
// the emitted tokens and the round statistics the cross-validation
// against internal/spec's analytic model consumes.
//
// INT8 mode (on either executor) and attached memory hosts fall back to
// plain Generate with zero SpecStats — the same precedent PrefillFrom
// sets for per-pass-scale-coupled numerics. Not safe for concurrent use
// with the same draft executor (stats merge); fork per caller.
func (e *Executor) SpecGenerate(prompt []int, n int, draft *Executor, gamma int) ([]int, SpecStats, error) {
	if draft == nil {
		return nil, SpecStats{}, fmt.Errorf("llm: nil draft executor")
	}
	if gamma < 1 {
		return nil, SpecStats{}, fmt.Errorf("llm: speculative depth γ must be ≥1, got %d", gamma)
	}
	if e.int8 != nil || draft.int8 != nil || e.Mem != nil || draft.Mem != nil {
		out, err := e.Generate(prompt, n)
		return out, SpecStats{}, err
	}
	s, err := e.NewSequence(prompt, n)
	if err != nil {
		return nil, SpecStats{}, err
	}
	defer s.Release()
	if err := s.EnableSpec(draft, gamma); err != nil {
		return nil, SpecStats{}, err
	}
	for !s.Done() {
		if _, err := s.SpecStep(e.Model.Cfg.MaxSeqLen); err != nil {
			return nil, SpecStats{}, err
		}
	}
	e.Stats.add(s.e.Stats)
	draft.Stats.add(s.spec.draft.Stats)
	return s.Output(), s.SpecStats(), nil
}
