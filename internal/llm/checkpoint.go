package llm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"github.com/lia-sim/lia/internal/amx"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/tensor"
)

// Checkpoint format: a little-endian binary container holding the
// architecture header followed by every tensor in BF16 (matching the
// paper's BF16 deployments and halving checkpoint size versus float32).
//
//	magic "LIA1" | config fields | repeated tensors (f32 arrays stored
//	as bf16 in a fixed traversal order)
const checkpointMagic = "LIA1"

// SaveCheckpoint writes the model to w in the BF16 container format.
func SaveCheckpoint(w io.Writer, m *Model) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(checkpointMagic); err != nil {
		return err
	}
	cfg := m.Cfg
	header := []int64{
		int64(cfg.Layers), int64(cfg.DModel), int64(cfg.Heads), int64(cfg.KVHeads),
		int64(cfg.DFF), int64(cfg.VocabSize), int64(cfg.MaxSeqLen), int64(cfg.BytesPerParam),
		int64(cfg.Experts), boolToInt64(cfg.GatedFFN), boolToInt64(cfg.RoPE), int64(len(cfg.Name)),
	}
	for _, v := range header {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString(cfg.Name); err != nil {
		return err
	}
	for _, ten := range modelTensors(m) {
		if err := writeBF16Tensor(bw, ten); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadCheckpoint reads a model previously written by SaveCheckpoint.
func LoadCheckpoint(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(checkpointMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("llm: reading checkpoint magic: %w", err)
	}
	if string(magic) != checkpointMagic {
		return nil, fmt.Errorf("llm: bad checkpoint magic %q", magic)
	}
	header := make([]int64, 12)
	for i := range header {
		if err := binary.Read(br, binary.LittleEndian, &header[i]); err != nil {
			return nil, fmt.Errorf("llm: reading checkpoint header: %w", err)
		}
	}
	nameLen := header[11]
	if nameLen < 0 || nameLen > 1<<16 {
		return nil, fmt.Errorf("llm: implausible name length %d", nameLen)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		return nil, err
	}
	cfg := model.Config{
		Name: string(nameBuf), Layers: int(header[0]), DModel: int(header[1]),
		Heads: int(header[2]), KVHeads: int(header[3]), DFF: int(header[4]),
		VocabSize: int(header[5]), MaxSeqLen: int(header[6]), BytesPerParam: int(header[7]),
		Experts: int(header[8]), GatedFFN: header[9] != 0, RoPE: header[10] != 0,
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("llm: checkpoint config: %w", err)
	}
	// Build a zero model with the right shapes, then fill its tensors.
	m, err := NewRandom(cfg, 0)
	if err != nil {
		return nil, err
	}
	for _, ten := range modelTensors(m) {
		if err := readBF16Tensor(br, ten); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// SaveCheckpointFile and LoadCheckpointFile are the disk conveniences.
func SaveCheckpointFile(path string, m *Model) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := SaveCheckpoint(f, m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadCheckpointFile loads a checkpoint from disk.
func LoadCheckpointFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadCheckpoint(f)
}

// modelTensors returns every parameter slice in the fixed traversal
// order the format relies on. Vectors are wrapped as 1×n tensors.
func modelTensors(m *Model) []tensor.Matrix {
	out := []tensor.Matrix{m.Embed, m.Pos,
		vec(m.FinalGain), vec(m.FinalBias)}
	for i := range m.Layers {
		l := &m.Layers[i]
		out = append(out,
			vec(l.LN1Gain), vec(l.LN1Bias), vec(l.LN2Gain), vec(l.LN2Bias),
			l.WQKV, vec(l.BQKV), l.WOut, vec(l.BOut),
			l.WFC1, vec(l.BFC1), l.WFC2, vec(l.BFC2))
	}
	return out
}

func vec(v []float32) tensor.Matrix { return tensor.FromSlice(1, len(v), v) }

func boolToInt64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// writeBF16Tensor stores length then bf16 payload.
func writeBF16Tensor(w io.Writer, t tensor.Matrix) error {
	if err := binary.Write(w, binary.LittleEndian, int64(len(t.Data))); err != nil {
		return err
	}
	buf := make([]byte, 2*len(t.Data))
	for i, v := range t.Data {
		b := amx.BF16FromFloat32(v)
		buf[2*i] = byte(b)
		buf[2*i+1] = byte(b >> 8)
	}
	_, err := w.Write(buf)
	return err
}

// readBF16Tensor fills t.Data in place, checking the stored length.
func readBF16Tensor(r io.Reader, t tensor.Matrix) error {
	var n int64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return fmt.Errorf("llm: reading tensor length: %w", err)
	}
	if n != int64(len(t.Data)) {
		return fmt.Errorf("llm: tensor length %d does not match expected %d", n, len(t.Data))
	}
	buf := make([]byte, 2*n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return fmt.Errorf("llm: reading tensor payload: %w", err)
	}
	for i := range t.Data {
		t.Data[i] = amx.BF16(uint16(buf[2*i]) | uint16(buf[2*i+1])<<8).Float32()
	}
	return nil
}
