package llm

import (
	"context"
	"encoding/json"
	"os"
	"reflect"
	"testing"

	"github.com/lia-sim/lia/internal/core"
)

// loadGolden reads the pinned 256-case corpus (policy × precision ×
// architecture) the latency-ladder paths must reproduce bit-for-bit.
func loadGolden(t *testing.T) map[string][]int {
	t.Helper()
	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with LLM_UPDATE_GOLDEN=1): %v", err)
	}
	var golden map[string][]int
	if err := json.Unmarshal(buf, &golden); err != nil {
		t.Fatal(err)
	}
	return golden
}

// goldenArchs returns the two corpus architectures with their prompts,
// matching goldenRuns.
func goldenArchs(t *testing.T) []struct {
	name   string
	m      *Model
	prompt []int
} {
	t.Helper()
	optM, err := NewRandom(TinyConfig(), 42)
	if err != nil {
		t.Fatal(err)
	}
	llamaM, err := NewRandom(TinyLlamaConfig(), 42)
	if err != nil {
		t.Fatal(err)
	}
	return []struct {
		name   string
		m      *Model
		prompt []int
	}{
		{"tiny-opt", optM, []int{5, 17, 42, 9, 63}},
		{"tiny-llama", llamaM, []int{9, 33, 71}},
	}
}

// spotPolicies returns the corpus policies exercised under -short (the
// same canonical four the golden invariance test keeps).
func testPolicies(t *testing.T) []core.Policy {
	if testing.Short() {
		return []core.Policy{core.FullGPU, core.FullCPU, core.PartialCPU, core.MoEPartial}
	}
	return core.AllPolicies()
}

// TestVerifyStepMatchesSequentialDecode pins the tentpole equivalence:
// row i of one multi-row cache-resumed VerifyStep equals (bit for bit)
// the logits sequential DecodeStep produces after feeding tokens[:i+1],
// and Truncate rolls the cache back to a state whose next decode is
// bit-identical too — the exactness greedy speculative acceptance and
// chunked prefill both rest on.
func TestVerifyStepMatchesSequentialDecode(t *testing.T) {
	for _, a := range goldenArchs(t) {
		for _, p := range []core.Policy{core.FullGPU, core.FullCPU, core.PartialCPU} {
			t.Run(a.name+"/"+p.String(), func(t *testing.T) {
				tokens := []int{3, 77, 12, 50}

				seqE := NewExecutor(a.m, p)
				_, seqCache, err := seqE.Prefill(a.prompt)
				if err != nil {
					t.Fatal(err)
				}
				var seqLogits [][]float32
				for _, tok := range tokens {
					lg, err := seqE.DecodeStep(seqCache, tok)
					if err != nil {
						t.Fatal(err)
					}
					seqLogits = append(seqLogits, append([]float32(nil), lg.Row(0)...))
				}

				verE := NewExecutor(a.m, p)
				_, verCache, err := verE.Prefill(a.prompt)
				if err != nil {
					t.Fatal(err)
				}
				base := verCache.Len()
				vlg, err := verE.VerifyStep(verCache, tokens)
				if err != nil {
					t.Fatal(err)
				}
				if vlg.Rows != len(tokens) {
					t.Fatalf("verify returned %d rows for %d tokens", vlg.Rows, len(tokens))
				}
				for i := range tokens {
					if !reflect.DeepEqual(vlg.Row(i), seqLogits[i]) {
						t.Fatalf("verify row %d diverges from sequential decode", i)
					}
				}

				// Rejection path: roll back all but the first token's row and
				// re-decode the second token — the logits must match the
				// sequential stream exactly.
				verCache.Truncate(base + 1)
				if verCache.Len() != base+1 {
					t.Fatalf("truncate left %d rows, want %d", verCache.Len(), base+1)
				}
				redo, err := verE.DecodeStep(verCache, tokens[1])
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(redo.Row(0), seqLogits[1]) {
					t.Fatal("decode after Truncate diverges from sequential decode")
				}
				// And the cache can regrow to full length after rollback.
				if _, err := verE.VerifyStep(verCache, tokens[2:]); err != nil {
					t.Fatal(err)
				}
				if verCache.Len() != base+len(tokens) {
					t.Fatalf("cache length %d after regrow, want %d", verCache.Len(), base+len(tokens))
				}
			})
		}
	}
}

func TestTruncateRejectsBadLengths(t *testing.T) {
	a := goldenArchs(t)[0]
	e := NewExecutor(a.m, core.FullGPU)
	_, cache, err := e.Prefill(a.prompt)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{-1, cache.Len() + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Truncate(%d) did not panic", n)
				}
			}()
			cache.Truncate(n)
		}()
	}
}

// TestGoldenSpecInvariance runs the full golden corpus through
// speculative decoding (1-layer shared-weight draft, γ=3): every case —
// including INT8, which falls back to sequential decode — must
// reproduce the pinned tokens exactly. This is the bit-identity
// acceptance criterion for the spec rung.
func TestGoldenSpecInvariance(t *testing.T) {
	golden := loadGolden(t)
	for _, a := range goldenArchs(t) {
		draftM, err := DraftModel(a.m, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range testPolicies(t) {
			for _, int8Mode := range []bool{false, true} {
				key := goldenKey(a.name, p, int8Mode)
				want, ok := golden[key]
				if !ok {
					t.Fatalf("no golden case %s", key)
				}
				e := NewExecutor(a.m, p)
				draft := NewExecutor(draftM, p)
				if int8Mode {
					e.EnableINT8()
				}
				got, stats, err := e.SpecGenerate(a.prompt, 12, draft, 3)
				if err != nil {
					t.Fatalf("%s: %v", key, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s: speculative tokens diverged:\n got %v\nwant %v", key, got, want)
				}
				if int8Mode {
					if stats.Rounds != 0 {
						t.Errorf("%s: INT8 fallback still ran %d spec rounds", key, stats.Rounds)
					}
				} else if stats.Rounds == 0 && stats.PlainSteps == 0 {
					t.Errorf("%s: spec path not exercised", key)
				}
			}
		}
	}
}

// TestSpecGenerateGammaSweep: the emitted stream is γ-invariant (always
// the greedy stream), and the stats stay internally consistent.
func TestSpecGenerateGammaSweep(t *testing.T) {
	for _, a := range goldenArchs(t) {
		draftM, err := DraftModel(a.m, 1)
		if err != nil {
			t.Fatal(err)
		}
		want, err := NewExecutor(a.m, core.PartialCPU).Generate(a.prompt, 20)
		if err != nil {
			t.Fatal(err)
		}
		for _, gamma := range []int{1, 2, 4, 8} {
			e := NewExecutor(a.m, core.PartialCPU)
			draft := NewExecutor(draftM, core.PartialCPU)
			got, stats, err := e.SpecGenerate(a.prompt, 20, draft, gamma)
			if err != nil {
				t.Fatalf("γ=%d: %v", gamma, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s γ=%d: tokens diverged from Generate", a.name, gamma)
			}
			if stats.Accepted > stats.Drafted {
				t.Errorf("γ=%d: accepted %d > drafted %d", gamma, stats.Accepted, stats.Drafted)
			}
			if stats.Emitted != 20 {
				t.Errorf("γ=%d: emitted %d tokens, want 20", gamma, stats.Emitted)
			}
			if tpr := stats.TokensPerRound(); stats.Rounds > 0 && (tpr < 1 || tpr > float64(gamma)+1) {
				t.Errorf("γ=%d: tokens/round %.2f outside [1, γ+1]", gamma, tpr)
			}
		}
	}
}

// TestSpecStepAllowCap: the KV allowance caps a round's durable cache
// growth without breaking bit-identity — capping acceptance still emits
// a prefix of the greedy stream.
func TestSpecStepAllowCap(t *testing.T) {
	a := goldenArchs(t)[0]
	draftM, err := DraftModel(a.m, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewExecutor(a.m, core.PartialCPU).Generate(a.prompt, 15)
	if err != nil {
		t.Fatal(err)
	}
	for _, allow := range []int{0, 1, 2, 3} {
		e := NewExecutor(a.m, core.PartialCPU)
		s, err := e.NewSequence(a.prompt, 15)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.EnableSpec(NewExecutor(draftM, core.PartialCPU), 4); err != nil {
			t.Fatal(err)
		}
		for !s.Done() {
			emitted, err := s.SpecStep(allow)
			if err != nil {
				t.Fatal(err)
			}
			if emitted < 1 {
				t.Fatalf("allow=%d: SpecStep emitted %d", allow, emitted)
			}
			if allow <= 1 && emitted != 1 && !s.Done() {
				t.Fatalf("allow=%d: emitted %d tokens in one round", allow, emitted)
			}
			if emitted > max(allow, 1)+0 && emitted > allow {
				// growth = emitted this round ≤ allow rows kept (first token
				// uses the pre-reserved slot).
				t.Fatalf("allow=%d: emitted %d tokens in one round", allow, emitted)
			}
		}
		if !reflect.DeepEqual(s.Output(), want) {
			t.Fatalf("allow=%d: tokens diverged from Generate", allow)
		}
	}
}

// TestGoldenChunkedInvariance drives the full corpus through chunked
// prefill (chunk=2) — including INT8, which must fall back to the
// monolithic pass — and the boundary chunk sizes the satellite names
// (1, len(prompt)−1, ≥len(prompt)) over the canonical policies. All
// bit-identical to the pinned tokens.
func TestGoldenChunkedInvariance(t *testing.T) {
	golden := loadGolden(t)
	drive := func(t *testing.T, e *Executor, prompt []int, n, chunk int) []int {
		t.Helper()
		s, err := e.NewSequenceChunked(prompt, n, chunk, nil)
		if err != nil {
			t.Fatal(err)
		}
		steps := 0
		for s.Prefilling() {
			done, err := s.AdvancePrefill()
			if err != nil {
				t.Fatal(err)
			}
			steps++
			if done != !s.Prefilling() {
				t.Fatal("AdvancePrefill done flag inconsistent with Prefilling")
			}
			if steps > len(prompt)+1 {
				t.Fatal("prefill did not converge")
			}
		}
		if chunk > 0 && chunk < len(prompt) {
			want := (len(prompt) + chunk - 1) / chunk
			if !e.INT8() && steps != want {
				t.Fatalf("chunk=%d took %d prefill rounds, want %d", chunk, steps, want)
			}
		}
		var out []int
		for !s.Done() {
			tok, err := s.Step()
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, tok)
		}
		return out
	}

	for _, a := range goldenArchs(t) {
		for _, p := range testPolicies(t) {
			for _, int8Mode := range []bool{false, true} {
				key := goldenKey(a.name, p, int8Mode)
				want := golden[key]
				e := NewExecutor(a.m, p)
				if int8Mode {
					e.EnableINT8()
				}
				if got := drive(t, e, a.prompt, 12, 2); !reflect.DeepEqual(got, want) {
					t.Errorf("%s chunk=2: tokens diverged:\n got %v\nwant %v", key, got, want)
				}
			}
		}
		// Boundary chunk sizes on the canonical policies.
		for _, p := range []core.Policy{core.FullGPU, core.FullCPU, core.PartialCPU, core.MoEPartial} {
			want := golden[goldenKey(a.name, p, false)]
			for _, chunk := range []int{1, len(a.prompt) - 1, len(a.prompt), len(a.prompt) + 7} {
				e := NewExecutor(a.m, p)
				if got := drive(t, e, a.prompt, 12, chunk); !reflect.DeepEqual(got, want) {
					t.Errorf("%s/%s chunk=%d: tokens diverged", a.name, p, chunk)
				}
			}
		}
	}
}

// TestChunkedStepGuards: a prefilling sequence rejects Step/SpecStep
// until AdvancePrefill completes, and reports its progress.
func TestChunkedStepGuards(t *testing.T) {
	a := goldenArchs(t)[0]
	e := NewExecutor(a.m, core.PartialCPU)
	s, err := e.NewSequenceChunked(a.prompt, 4, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Prefilling() {
		t.Fatal("fresh chunked sequence should be prefilling")
	}
	if _, err := s.Step(); err == nil {
		t.Fatal("Step on a prefilling sequence succeeded")
	}
	if err := s.EnableSpec(e, 2); err == nil {
		t.Fatal("EnableSpec on a prefilling sequence succeeded")
	}
	if done, err := s.AdvancePrefill(); err != nil || done {
		t.Fatalf("first chunk: done=%v err=%v", done, err)
	}
	if s.PrefillPos() != 2 {
		t.Fatalf("prefill pos %d after one chunk of 2", s.PrefillPos())
	}
	for s.Prefilling() {
		if _, err := s.AdvancePrefill(); err != nil {
			t.Fatal(err)
		}
	}
	if done, err := s.AdvancePrefill(); err != nil || !done {
		t.Fatalf("AdvancePrefill on ready sequence: done=%v err=%v", done, err)
	}
	if _, err := s.Step(); err != nil {
		t.Fatal(err)
	}
}

// TestChunkedWithSeed: chunked prefill composes with a prefix-cache
// seed — the chunks cover only the uncached remainder and the tokens
// stay bit-identical.
func TestChunkedWithSeed(t *testing.T) {
	a := goldenArchs(t)[1] // tiny-llama: RoPE + GQA is the harder case
	prompt := []int{9, 33, 71, 5, 17, 42, 9, 63}
	e := NewExecutor(a.m, core.PartialCPU)
	want, err := e.Generate(prompt, 10)
	if err != nil {
		t.Fatal(err)
	}
	_, cache, err := e.Prefill(prompt[:3])
	if err != nil {
		t.Fatal(err)
	}
	seg, err := e.ExportKV(cache, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	seed := &KVSeed{Segments: []KVSegment{seg}}
	s, err := e.NewSequenceChunked(prompt, 10, 2, seed)
	if err != nil {
		t.Fatal(err)
	}
	if s.PrefillPos() != 3 {
		t.Fatalf("seeded chunked sequence starts at %d, want 3", s.PrefillPos())
	}
	for s.Prefilling() {
		if _, err := s.AdvancePrefill(); err != nil {
			t.Fatal(err)
		}
	}
	var out []int
	for !s.Done() {
		tok, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, tok)
	}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("seeded chunked tokens diverged:\n got %v\nwant %v", out, want)
	}
}

// TestStepBatchFusedMatchesStepBatch: the cross-sequence batched GEMM
// round emits bit-identical tokens to per-sequence stepping, across
// both architectures, all corpus policies, and ragged targets (members
// retiring mid-stream).
func TestStepBatchFusedMatchesStepBatch(t *testing.T) {
	ctx := context.Background()
	for _, a := range goldenArchs(t) {
		for _, p := range testPolicies(t) {
			t.Run(a.name+"/"+p.String(), func(t *testing.T) {
				prompts := [][]int{{1, 2, 3}, {50, 60}, {7}, a.prompt}
				targets := []int{9, 4, 7, 2} // ragged: members finish at different rounds

				mk := func() []*Sequence {
					e := NewExecutor(a.m, p)
					var seqs []*Sequence
					for i, prompt := range prompts {
						s, err := e.NewSequence(prompt, targets[i])
						if err != nil {
							t.Fatal(err)
						}
						seqs = append(seqs, s)
					}
					return seqs
				}
				live := func(seqs []*Sequence) []*Sequence {
					var out []*Sequence
					for _, s := range seqs {
						if !s.Done() {
							out = append(out, s)
						}
					}
					return out
				}

				ref := mk()
				for l := live(ref); len(l) > 0; l = live(ref) {
					if err := StepBatch(ctx, l); err != nil {
						t.Fatal(err)
					}
				}
				fused := mk()
				e := fused[0].e // any fork shares the parent's model/caches
				for l := live(fused); len(l) > 0; l = live(fused) {
					if err := e.StepBatchFused(ctx, l); err != nil {
						t.Fatal(err)
					}
				}
				for i := range ref {
					if !reflect.DeepEqual(ref[i].Output(), fused[i].Output()) {
						t.Errorf("sequence %d diverged:\n per-seq %v\n fused  %v", i, ref[i].Output(), fused[i].Output())
					}
				}
			})
		}
	}
}

// TestGenerateBatchFusedGolden: the fused batch path reproduces the
// golden corpus tokens (BF16 cases) when every corpus prompt runs as
// one batch.
func TestGenerateBatchFusedGolden(t *testing.T) {
	golden := loadGolden(t)
	for _, a := range goldenArchs(t) {
		for _, p := range []core.Policy{core.FullGPU, core.FullCPU, core.PartialCPU, core.MoEPartial} {
			e := NewExecutor(a.m, p)
			outs, err := e.GenerateBatchFused([][]int{a.prompt, a.prompt, a.prompt}, 12)
			if err != nil {
				t.Fatal(err)
			}
			want := golden[goldenKey(a.name, p, false)]
			for lane, got := range outs {
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s/%s lane %d diverged from golden tokens", a.name, p, lane)
				}
			}
		}
	}
}

// TestSpecValidation covers the guard rails: draft construction bounds,
// double-enable, INT8 refusal, unprimed SpecStep.
func TestSpecValidation(t *testing.T) {
	a := goldenArchs(t)[0]
	if _, err := DraftModel(nil, 1); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := DraftModel(a.m, 0); err == nil {
		t.Error("zero-layer draft accepted")
	}
	if _, err := DraftModel(a.m, len(a.m.Layers)+1); err == nil {
		t.Error("over-deep draft accepted")
	}
	draftM, err := DraftModel(a.m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if draftM.Cfg.Layers != 1 || len(draftM.Layers) != 1 {
		t.Fatalf("draft has %d/%d layers", draftM.Cfg.Layers, len(draftM.Layers))
	}

	e := NewExecutor(a.m, core.PartialCPU)
	s, err := e.NewSequence(a.prompt, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SpecStep(100); err == nil {
		t.Error("SpecStep without EnableSpec succeeded")
	}
	draft := NewExecutor(draftM, core.PartialCPU)
	if err := s.EnableSpec(nil, 2); err == nil {
		t.Error("nil draft accepted")
	}
	if err := s.EnableSpec(draft, 0); err == nil {
		t.Error("γ=0 accepted")
	}
	if err := s.EnableSpec(draft, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.EnableSpec(draft, 2); err == nil {
		t.Error("double EnableSpec succeeded")
	}

	int8E := NewExecutor(a.m, core.PartialCPU)
	int8E.EnableINT8()
	s2, err := int8E.NewSequence(a.prompt, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.EnableSpec(draft, 2); err == nil {
		t.Error("EnableSpec on INT8 target succeeded")
	}

	if _, err := e.VerifyStep(nil, []int{1}); err == nil {
		t.Error("VerifyStep on nil cache succeeded")
	}
	_, cache, err := e.Prefill(a.prompt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.VerifyStep(cache, nil); err == nil {
		t.Error("empty VerifyStep succeeded")
	}
}
