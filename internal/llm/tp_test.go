package llm

import (
	"testing"

	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/hw"
)

// The tentpole contract for tensor parallelism: sharding is a pure
// re-layout — tokens are bit-identical to the unsharded executor under
// every offloading policy, for both model families, at every legal
// shard count.
func TestTPBitIdenticalToUnsharded(t *testing.T) {
	cases := []struct {
		name string
		m    *Model
		ways []int
	}{
		{"tiny-opt", tinyModel(t), []int{2, 4}},
		{"tiny-llama", tinyLlama(t), []int{2}},
	}
	prompt := []int{3, 14, 15, 92}
	for _, tc := range cases {
		for _, ways := range tc.ways {
			for _, p := range []core.Policy{core.FullGPU, core.FullCPU, core.PartialCPU} {
				ref, err := NewExecutor(tc.m, p).Generate(prompt, 12)
				if err != nil {
					t.Fatal(err)
				}
				e := NewExecutor(tc.m, p)
				if err := e.EnableTP(ways, hw.NVLink3); err != nil {
					t.Fatalf("%s ways=%d: %v", tc.name, ways, err)
				}
				if !e.TP() || e.TPWays() != ways {
					t.Fatal("TP mode not reported")
				}
				got, err := e.Generate(prompt, 12)
				if err != nil {
					t.Fatal(err)
				}
				for i := range ref {
					if got[i] != ref[i] {
						t.Fatalf("%s ways=%d policy %s: TP tokens diverged at %d: %v vs %v",
							tc.name, ways, p, i, got, ref)
					}
				}
			}
		}
	}
}

// TP composes with the fused batch-decode path (fusedLayer routes its
// parameter GEMMs through linear, which dispatches to the sharded
// kernels): batch tokens stay bit-identical to per-sequence generation.
func TestTPBitIdenticalOnFusedBatch(t *testing.T) {
	m := tinyModel(t)
	prompts := [][]int{{1, 2, 3}, {4, 5}, {6, 7, 8, 9}}
	ref := make([][]int, len(prompts))
	for i, p := range prompts {
		out, err := NewExecutor(m, core.PartialCPU).Generate(p, 8)
		if err != nil {
			t.Fatal(err)
		}
		ref[i] = out
	}
	e := NewExecutor(m, core.PartialCPU)
	if err := e.EnableTP(2, hw.NVLink3); err != nil {
		t.Fatal(err)
	}
	got, err := e.GenerateBatchFused(prompts, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		for j := range ref[i] {
			if got[i][j] != ref[i][j] {
				t.Fatalf("fused TP batch diverged on seq %d: %v vs %v", i, got[i], ref[i])
			}
		}
	}
}

// The virtual comm clock charges exactly two ring all-reduces per
// decoder layer per forward pass (after the out-projection and FC2 —
// the analytic MultiGPU baseline's schedule). On the tiny model every
// all-reduce lands on the calibrated latency floor, so the ledger is
// exactly AllReduces × floor.
func TestTPCommLedger(t *testing.T) {
	m := tinyModel(t)
	e := NewExecutor(m, core.FullGPU)
	if err := e.EnableTP(2, hw.NVLink3); err != nil {
		t.Fatal(err)
	}
	prompt := []int{1, 2, 3}
	const steps = 6
	if _, err := e.Generate(prompt, steps); err != nil {
		t.Fatal(err)
	}
	st := e.TPStats()
	// One prefill pass + (steps-1) decode passes, 2 all-reduces per layer
	// per pass.
	passes := int64(1 + steps - 1)
	want := 2 * int64(m.Cfg.Layers) * passes
	if st.AllReduces != want {
		t.Fatalf("all-reduces = %d, want %d", st.AllReduces, want)
	}
	const floor = 600e-6 // core's tpAllReduceFloor
	if got, want := float64(st.Comm), float64(st.AllReduces)*floor; got != want {
		t.Errorf("comm = %v, want %d × %v = %v (tiny hidden states sit on the latency floor)",
			got, st.AllReduces, floor, want)
	}
	if st.Ways != 2 {
		t.Errorf("ways = %d, want 2", st.Ways)
	}
}

func TestTPValidation(t *testing.T) {
	m := tinyModel(t)
	if err := NewExecutor(m, core.FullGPU).EnableTP(1, hw.NVLink3); err == nil {
		t.Error("ways=1 must be rejected")
	}
	// tiny-llama has 2 KV heads: 4-way sharding cannot divide them.
	if err := NewExecutor(tinyLlama(t), core.FullGPU).EnableTP(4, hw.NVLink3); err == nil {
		t.Error("indivisible KV heads must be rejected")
	}
	e := NewExecutor(m, core.FullGPU)
	e.EnableINT8()
	if err := e.EnableTP(2, hw.NVLink3); err == nil {
		t.Error("TP over a compressed tier must be rejected")
	}
	// Enabling a compressed tier turns TP back off.
	e2 := NewExecutor(m, core.FullGPU)
	if err := e2.EnableTP(2, hw.NVLink3); err != nil {
		t.Fatal(err)
	}
	e2.EnableSparse(0.5)
	if e2.TP() {
		t.Error("EnableSparse must clear TP")
	}
	e3 := NewExecutor(m, core.FullGPU)
	if err := e3.EnableTP(2, hw.NVLink3); err != nil {
		t.Fatal(err)
	}
	e3.EnableINT8()
	if e3.TP() {
		t.Error("EnableINT8 must clear TP")
	}
}

// Forks share the TP shard caches and the comm ledger, like the dense
// tier's packed-weight caches: concurrent batch generation must not
// re-shard or split the ledger.
func TestTPForkSharesState(t *testing.T) {
	m := tinyModel(t)
	e := NewExecutor(m, core.FullGPU)
	if err := e.EnableTP(2, hw.NVLink3); err != nil {
		t.Fatal(err)
	}
	sub := e.fork()
	if sub.tp != e.tp {
		t.Fatal("fork must share the TP state")
	}
	if _, err := sub.Generate([]int{1, 2}, 4); err != nil {
		t.Fatal(err)
	}
	if st := e.TPStats(); st.AllReduces == 0 {
		t.Error("fork all-reduces not aggregated into the family ledger")
	}
	prompts := [][]int{{1, 2}, {3, 4}, {5, 6}}
	if _, err := e.GenerateBatch(prompts, 4); err != nil {
		t.Fatal(err)
	}
}
