package llm

import (
	"reflect"
	"testing"

	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/runner"
	"github.com/lia-sim/lia/internal/tensor"
)

// decodeAllocBudget bounds allocations per DecodeStep. The seed
// implementation spent 235 allocs/op (re-packing weights, cloning
// operands, re-growing the KV cache); the cached executor measures ≤68
// on every canonical policy, so 75 leaves slack without ever letting a
// per-step pack or clone regression (tens of allocations each) slip by.
const decodeAllocBudget = 75

// TestDecodeStepAllocBudget pins the steady-state decode loop's
// allocation count under each canonical policy.
func TestDecodeStepAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts")
	}
	m, err := NewRandom(TinyConfig(), 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		policy core.Policy
	}{
		{"FullGPU", core.FullGPU},
		{"FullCPU", core.FullCPU},
		{"PartialCPU", core.PartialCPU},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := NewExecutor(m, tc.policy)
			_, cache, err := e.Prefill([]int{5, 17, 42, 9, 63})
			if err != nil {
				t.Fatal(err)
			}
			// Warm the scratch buffers and weight caches before counting.
			if _, err := e.DecodeStep(cache, 7); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(20, func() {
				if _, err := e.DecodeStep(cache, 7); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > decodeAllocBudget {
				t.Errorf("DecodeStep allocated %.0f/op under %s, budget %d", allocs, tc.name, decodeAllocBudget)
			}
		})
	}
}

// TestWeightPacksBounded proves each static weight is packed or rounded
// at most once per executor: the pack count settles after the first
// forward pass and never moves again, no matter how many tokens are
// generated or how many sequences fork the executor.
func TestWeightPacksBounded(t *testing.T) {
	m, err := NewRandom(TinyConfig(), 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		policy core.Policy
		want   int64 // 4 parameter sublayers per layer, one conversion each
	}{
		{"FullGPU", core.FullGPU, int64(4 * m.Cfg.Layers)},
		{"FullCPU", core.FullCPU, int64(4 * m.Cfg.Layers)},
		{"PartialCPU", core.PartialCPU, int64(4 * m.Cfg.Layers)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := NewExecutor(m, tc.policy)
			if got := e.WeightPacks(); got != 0 {
				t.Fatalf("fresh executor reports %d packs", got)
			}
			if _, err := e.Generate([]int{5, 17, 42}, 8); err != nil {
				t.Fatal(err)
			}
			after := e.WeightPacks()
			if after != tc.want {
				t.Fatalf("%s packed %d weights, want %d", tc.name, after, tc.want)
			}
			// More tokens, more sequences: the count must not move.
			if _, err := e.GenerateBatch([][]int{{1, 2}, {3, 4}, {5, 6}}, 6); err != nil {
				t.Fatal(err)
			}
			if got := e.WeightPacks(); got != after {
				t.Errorf("pack count moved %d -> %d across further generation", after, got)
			}
		})
	}
}

// TestRoPECachedMatchesReference pins the table-based rotation to the
// table-free reference bit for bit, across positions and both tiny
// configs' head widths.
func TestRoPECachedMatchesReference(t *testing.T) {
	m, err := NewRandom(TinyLlamaConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	e := NewExecutor(m, core.FullGPU)
	dh := m.Cfg.HeadDim()
	for _, startPos := range []int{0, 1, 17, m.Cfg.MaxSeqLen - 3} {
		ref := tensor.New(3, m.Cfg.DModel)
		for i := range ref.Data {
			ref.Data[i] = float32(i%13) - 6.5
		}
		got := ref.Clone()
		applyRoPE(ref, dh, startPos)
		e.applyRoPECached(got, dh, startPos)
		if !reflect.DeepEqual(ref.Data, got.Data) {
			t.Fatalf("cached RoPE diverges from reference at startPos %d", startPos)
		}
	}
}

// TestGenerateBatchParallelDeterminism requires batch generation to be
// bit-identical sequential vs parallel, and each batch lane identical to
// a solo Generate of the same prompt.
func TestGenerateBatchParallelDeterminism(t *testing.T) {
	prompts := [][]int{{5, 17, 42}, {9, 33, 71, 2}, {1}, {60, 61, 62, 63, 64}, {7, 7, 7}}
	const n = 10
	for _, mc := range []struct {
		name string
		cfg  func() (m *Model, err error)
	}{
		{"tiny-opt", func() (*Model, error) { return NewRandom(TinyConfig(), 42) }},
		{"tiny-llama", func() (*Model, error) { return NewRandom(TinyLlamaConfig(), 42) }},
	} {
		t.Run(mc.name, func(t *testing.T) {
			m, err := mc.cfg()
			if err != nil {
				t.Fatal(err)
			}
			defer runner.SetWorkers(0)

			runner.SetWorkers(1)
			seqExe := NewExecutor(m, core.PartialCPU)
			sequential, err := seqExe.GenerateBatch(prompts, n)
			if err != nil {
				t.Fatal(err)
			}

			runner.SetWorkers(8)
			parExe := NewExecutor(m, core.PartialCPU)
			parallel, err := parExe.GenerateBatch(prompts, n)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(sequential, parallel) {
				t.Fatalf("parallel batch diverges from sequential:\n seq %v\n par %v", sequential, parallel)
			}
			// Dispatch counters are schedule-independent; AMXCycles is not
			// (tile-palette Configure cycles amortize per pooled worker
			// unit, and how many units a run touches depends on
			// scheduling), so it is only required to be live.
			if seqExe.Stats.CPUMatmuls != parExe.Stats.CPUMatmuls ||
				seqExe.Stats.GPUMatmuls != parExe.Stats.GPUMatmuls ||
				seqExe.Stats.Int8Matmuls != parExe.Stats.Int8Matmuls {
				t.Errorf("dispatch counters diverge: sequential %+v parallel %+v", seqExe.Stats, parExe.Stats)
			}
			if seqExe.Stats.AMXCycles == 0 || parExe.Stats.AMXCycles == 0 {
				t.Error("AMX cycle accounting went dead")
			}

			for i, p := range prompts {
				solo, err := NewExecutor(m, core.PartialCPU).Generate(p, n)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(solo, parallel[i]) {
					t.Errorf("batch lane %d diverges from solo Generate: %v vs %v", i, parallel[i], solo)
				}
			}
		})
	}
}
