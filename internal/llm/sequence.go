package llm

import (
	"context"
	"fmt"

	"github.com/lia-sim/lia/internal/runner"
)

// Sequence is one in-flight generation: a forked executor (private Stats
// and scratch, shared packed-weight caches), its KV cache, and the next
// token to emit. It is the unit the serving gateway's iteration-level
// batcher schedules — a sequence advances one token per StepBatch call,
// so the running batch's membership can change between decode iterations
// (Orca-style continuous batching) while each sequence's tokens stay
// bit-identical to a solo Generate call.
//
// A Sequence is single-goroutine: concurrent Step calls on one Sequence
// race, but different Sequences step concurrently (that is what
// StepBatch does).
type Sequence struct {
	e       *Executor
	cache   *KVCache
	pending int // next token to emit, already decoded
	out     []int
	target  int
	// prompt is retained (aliased, not copied) for the two paths that
	// need it after construction: chunked prefill computes it piecewise
	// and speculative decoding prefills the draft over it.
	prompt []int
	// prefillPos counts prompt tokens whose KV rows are in the cache;
	// below len(prompt) the sequence is still prefilling (chunked mode)
	// and cannot Step yet.
	prefillPos int
	// chunk is the chunked-prefill chunk size (0 = monolithic).
	chunk    int
	spec     *specState
	released bool
}

// NewSequence prefills the prompt on a forked executor and returns a
// sequence that will emit exactly n tokens. The shape is validated up
// front — the serving admission path must reject oversized work before
// reserving batch slots, not discover it mid-decode: prefill occupies
// len(prompt) positions and the n-1 decode steps one more each, so
// len(prompt)+n-1 must fit MaxSeqLen.
func (e *Executor) NewSequence(prompt []int, n int) (*Sequence, error) {
	if n < 1 {
		return nil, fmt.Errorf("llm: sequence must emit at least one token, got %d", n)
	}
	if len(prompt)+n-1 > e.Model.Cfg.MaxSeqLen {
		return nil, fmt.Errorf("llm: prompt %d + %d generated tokens exceeds max sequence length %d",
			len(prompt), n, e.Model.Cfg.MaxSeqLen)
	}
	sub := e.fork()
	logits, cache, err := sub.Prefill(prompt)
	if err != nil {
		return nil, err
	}
	return &Sequence{
		e:          sub,
		cache:      cache,
		pending:    logits.ArgmaxRow(logits.Rows - 1),
		out:        make([]int, 0, n),
		target:     n,
		prompt:     prompt,
		prefillPos: len(prompt),
	}, nil
}

// Step emits the pending token and, unless it was the sequence's last,
// decodes the next one. The emitted stream over target steps is
// bit-identical to Generate(prompt, target) — the final decode is
// skipped exactly as Generate skips it. Stepping a finished sequence is
// an error.
func (s *Sequence) Step() (int, error) {
	if s.Prefilling() {
		return 0, fmt.Errorf("llm: sequence is still prefilling (%d/%d prompt tokens)", s.prefillPos, len(s.prompt))
	}
	if s.Done() {
		return 0, fmt.Errorf("llm: sequence already emitted its %d tokens", s.target)
	}
	tok := s.pending
	s.out = append(s.out, tok)
	if len(s.out) < s.target {
		logits, err := s.e.DecodeStep(s.cache, tok)
		if err != nil {
			return 0, err
		}
		s.pending = logits.ArgmaxRow(0)
	}
	return tok, nil
}

// Done reports whether the sequence has emitted all its tokens.
func (s *Sequence) Done() bool { return len(s.out) >= s.target }

// Output returns the tokens emitted so far (aliased, not copied).
func (s *Sequence) Output() []int { return s.out }

// Emitted returns how many tokens have been emitted.
func (s *Sequence) Emitted() int { return len(s.out) }

// Target returns how many tokens the sequence will emit in total.
func (s *Sequence) Target() int { return s.target }

// ContextLen returns the KV cache's current length.
func (s *Sequence) ContextLen() int { return s.cache.Len() }

// Stats returns the fork's dispatch counters (prefill plus all steps so
// far).
func (s *Sequence) Stats() Stats { return s.e.Stats }

// Release returns the sequence's KV-cache storage to the executor's
// MemHost (a no-op without one). The serving gateway calls it whenever a
// sequence leaves the batch — retirement, preemption, cancellation, or
// failure — so tier-hosted KV pages never outlive the request. Idempotent;
// the sequence must not be stepped afterwards.
func (s *Sequence) Release() {
	if s.released {
		return
	}
	s.released = true
	s.e.RetireCache(s.cache)
	if s.spec != nil {
		s.spec.draft.RetireCache(s.spec.dcache)
	}
}

// StepBatch advances every sequence one decode step in parallel on the
// deterministic runner pool — one iteration of continuous batching. Each
// sequence owns its executor fork and KV cache, so the only shared state
// is the immutable packed-weight cache; results are bit-identical to
// stepping the sequences one by one. Finished sequences are rejected,
// matching the scheduler contract that retired work leaves the batch
// immediately.
func StepBatch(ctx context.Context, seqs []*Sequence) error {
	if len(seqs) == 0 {
		return fmt.Errorf("llm: empty step batch")
	}
	_, err := runner.Map(ctx, seqs, func(_ context.Context, s *Sequence) (struct{}, error) {
		_, err := s.Step()
		return struct{}{}, err
	})
	if err != nil {
		return fmt.Errorf("llm: %w", err)
	}
	return nil
}
