package cost

import (
	"math"
	"testing"

	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/units"
)

func TestHourlyCost(t *testing.T) {
	a := Defaults()
	gnr := a.HourlyCost(hw.GNRA100)
	// ~$22k over 3 years ≈ $0.84/h plus ~$0.1/h electricity.
	if gnr < 0.7 || gnr > 1.3 {
		t.Errorf("GNR-A100 hourly = %v, want ≈$0.9", gnr)
	}
	dgx := a.HourlyCost(hw.DGXA100)
	if ratio := float64(dgx) / float64(gnr); ratio < 6 || ratio > 12 {
		t.Errorf("DGX/GNR hourly ratio = %.1f, want ≈8-9", ratio)
	}
}

func TestPerMillionTokens(t *testing.T) {
	a := Defaults()
	c := a.PerMillionTokens(hw.GNRA100, 100)
	if c <= 0 {
		t.Fatal("cost must be positive")
	}
	// Doubling throughput halves cost.
	half := a.PerMillionTokens(hw.GNRA100, 200)
	if math.Abs(float64(c)/float64(half)-2) > 1e-9 {
		t.Error("cost not inversely proportional to throughput")
	}
	if a.PerMillionTokens(hw.GNRA100, 0) != 0 {
		t.Error("zero throughput should yield zero (OOM marker)")
	}
}

func TestPerGPUThroughput(t *testing.T) {
	if PerGPUThroughput(hw.DGXA100, 800) != 100 {
		t.Error("DGX per-GPU throughput wrong")
	}
	if PerGPUThroughput(hw.GNRA100, 100) != 100 {
		t.Error("single-GPU throughput wrong")
	}
}

// TestMemorySavingsHeadline reproduces §8: an OPT-175B host memory system
// drops from ≈$6,300 to ≈$3,200 when 43% of data moves to CXL.
func TestMemorySavingsHeadline(t *testing.T) {
	// Size the memory system to OPT-175B's B=64-ish working footprint
	// (§8 prices the 560 GB host memory the deployment needs).
	capacity := model.OPT175B.ParamBytes() + 210*units.GB
	allDDR, withCXL, saved := MemorySavings(capacity, 0.43)
	if allDDR < 5_500 || allDDR > 7_100 {
		t.Errorf("all-DDR cost = %v, want ≈$6,300", allDDR)
	}
	if withCXL < 2_600 || withCXL > 3_900 {
		t.Errorf("hybrid cost = %v, want ≈$3,200", withCXL)
	}
	if saved <= 0 {
		t.Error("offloading must save money")
	}
}

func TestMemorySavingsClamps(t *testing.T) {
	_, withCXL, _ := MemorySavings(100*units.GB, 2)
	_, atOne, _ := MemorySavings(100*units.GB, 1)
	if withCXL != atOne {
		t.Error("fraction should clamp at 1")
	}
	allDDR, none, saved := MemorySavings(100*units.GB, -1)
	if none != allDDR || saved != 0 {
		t.Error("negative fraction should clamp at 0")
	}
}
