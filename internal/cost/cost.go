// Package cost implements the paper's cost-efficiency accounting (§7.8,
// §8): hardware acquisition amortized over three years, electricity at
// the cheapest U.S. rate, dollars per million generated tokens, and the
// CXL memory-system savings.
package cost

import (
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/units"
)

// Assumptions fixes the economic parameters (§7.8 footnote).
type Assumptions struct {
	// AmortizationYears spreads the acquisition cost (paper: 3 years).
	AmortizationYears float64
	// ElectricityPerKWh is the energy price (paper: $0.1/kWh, Louisiana).
	ElectricityPerKWh units.USD
}

// Defaults returns the paper's assumptions.
func Defaults() Assumptions {
	return Assumptions{AmortizationYears: 3, ElectricityPerKWh: 0.1}
}

// HourlyCost returns the system's all-in hourly cost: amortized hardware
// plus electricity at TDP.
func (a Assumptions) HourlyCost(sys hw.System) units.USD {
	hours := a.AmortizationYears * 365 * 24
	hwPart := float64(sys.TotalCost()) / hours
	elecPart := float64(sys.TDP()) / 1000 * float64(a.ElectricityPerKWh)
	return units.USD(hwPart + elecPart)
}

// PerMillionTokens converts a sustained throughput (tokens/s) into
// dollars per million generated tokens.
func (a Assumptions) PerMillionTokens(sys hw.System, tokensPerSecond float64) units.USD {
	if tokensPerSecond <= 0 {
		return units.USD(0)
	}
	perHour := tokensPerSecond * 3600
	return units.USD(float64(a.HourlyCost(sys)) / perHour * 1e6)
}

// PerGPUThroughput normalizes throughput by GPU count — Figure 14's
// x-axis metric for comparing a 1-GPU LIA box against an 8-GPU DGX.
func PerGPUThroughput(sys hw.System, tokensPerSecond float64) float64 {
	n := sys.GPUCount
	if n < 1 {
		n = 1
	}
	return tokensPerSecond / float64(n)
}

// Memory-system pricing from §8: an all-DDR memory system costs $11.25
// per GB; a half-DDR/half-CXL system costs $5.60 per GB overall.
const (
	DDRPerGB    units.USD = 11.25
	HybridPerGB units.USD = 5.60
)

// MemorySavings returns the §8 comparison for a host that must hold
// `capacity` bytes: the all-DDR cost, the cost when `offloadFraction` of
// the data moves to CXL (that fraction priced at the hybrid blend's CXL
// side), and the absolute saving. For OPT-175B the paper quotes
// $6,300 → $3,200.
func MemorySavings(capacity units.Bytes, offloadFraction float64) (allDDR, withCXL, saved units.USD) {
	if offloadFraction < 0 {
		offloadFraction = 0
	}
	if offloadFraction > 1 {
		offloadFraction = 1
	}
	gb := float64(capacity) / float64(units.GB)
	allDDR = units.USD(gb) * DDRPerGB
	// The CXL-held fraction is priced at the hybrid system's implied CXL
	// rate: hybrid = 0.5·DDR + 0.5·cxlRate → cxlRate = 2·hybrid − DDR.
	cxlRate := 2*HybridPerGB - DDRPerGB
	withCXL = units.USD(gb*(1-offloadFraction))*DDRPerGB + units.USD(gb*offloadFraction)*cxlRate
	saved = allDDR - withCXL
	return allDDR, withCXL, saved
}
