package perf

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/units"
)

// dModel is OPT-175B's model dimension, the shape §4 benchmarks with.
const dModel = 12288

// fc1Throughput measures the paper's GEMM microbenchmark: the prefill FC1
// sublayer, (B·L, d_m) × (d_m, 4·d_m).
func fc1Throughput(d Device, bl int) units.FLOPSRate {
	return d.GEMMThroughput(bl, dModel, 4*dModel)
}

func TestGEMMCalibrationRatios(t *testing.T) {
	const bl = 36864 // top of the paper's B·L sweep
	sprAMX := fc1Throughput(CPUDevice(hw.SPR, hw.AMX), bl)
	sprAVX := fc1Throughput(CPUDevice(hw.SPR, hw.AVX512), bl)
	gnrAMX := fc1Throughput(CPUDevice(hw.GNR, hw.AMX), bl)
	p100 := fc1Throughput(GPUDevice(hw.P100), bl)
	v100 := fc1Throughput(GPUDevice(hw.V100), bl)
	a100 := fc1Throughput(GPUDevice(hw.A100), bl)
	h100 := fc1Throughput(GPUDevice(hw.H100), bl)

	checkRatio := func(name string, got, want, tol float64) {
		t.Helper()
		if math.Abs(got-want) > tol {
			t.Errorf("%s = %.2f, want %.2f±%.2f", name, got, want, tol)
		}
	}
	// §4.1 measured maxima: SPR-AMX is 4.5× AVX512 and 2.4× P100.
	checkRatio("SPR-AMX/AVX512", float64(sprAMX)/float64(sprAVX), 4.5, 0.4)
	checkRatio("SPR-AMX/P100", float64(sprAMX)/float64(p100), 2.4, 0.3)
	// SPR-AMX reaches up to 28% of V100, 11% of A100, 5% of H100.
	checkRatio("SPR-AMX/V100", float64(sprAMX)/float64(v100), 0.26, 0.05)
	checkRatio("SPR-AMX/A100", float64(sprAMX)/float64(a100), 0.11, 0.02)
	checkRatio("SPR-AMX/H100", float64(sprAMX)/float64(h100), 0.05, 0.015)
	// GNR-AMX is ~2.2× SPR-AMX, ~22% of A100, ~10% of H100.
	checkRatio("GNR-AMX/SPR-AMX", float64(gnrAMX)/float64(sprAMX), 2.2, 0.3)
	checkRatio("GNR-AMX/A100", float64(gnrAMX)/float64(a100), 0.22, 0.04)
	checkRatio("GNR-AMX/H100", float64(gnrAMX)/float64(h100), 0.10, 0.025)
}

func TestGEMMAbsoluteCeilings(t *testing.T) {
	const bl = 65536
	cases := []struct {
		name string
		dev  Device
		want units.FLOPSRate
	}{
		{"SPR-AMX", CPUDevice(hw.SPR, hw.AMX), 20 * units.TFLOPS},
		{"GNR-AMX", CPUDevice(hw.GNR, hw.AMX), 44 * units.TFLOPS},
		{"H100", GPUDevice(hw.H100), 400 * units.TFLOPS},
	}
	for _, c := range cases {
		got := fc1Throughput(c.dev, bl)
		if got < c.want*8/10 || got > c.want {
			t.Errorf("%s asymptotic GEMM = %v, want within 80–100%% of %v", c.name, got, c.want)
		}
	}
}

// gemvThroughput measures the QK^T decoding shape: (B·n_h, 1, d_h)·(B·n_h, d_h, L).
func gemvThroughput(d Device, b, l int) units.FLOPSRate {
	const nh, dh = 96, 128
	return d.BatchedGEMVThroughput(b*nh, dh, l)
}

func TestGEMVCalibration(t *testing.T) {
	// SPR peaks near 199 GFLOPS (§4.2).
	spr := gemvThroughput(CPUDevice(hw.SPR, hw.AMX), 256, 1024)
	if spr < 170*units.GFLOPS || spr > 210*units.GFLOPS {
		t.Errorf("SPR GEMV peak = %v, want ≈199 GFLOPS", spr)
	}
	// AMX and AVX512 GEMV differ by <10% — both memory-bound.
	avx := gemvThroughput(CPUDevice(hw.SPR, hw.AVX512), 256, 1024)
	if r := float64(spr) / float64(avx); r > 1.1 || r < 0.9 {
		t.Errorf("AMX/AVX512 GEMV ratio = %.2f, want within 10%%", r)
	}
	// GNR improves GEMV ~70% via its 12 DDR5-5600 channels.
	gnr := gemvThroughput(CPUDevice(hw.GNR, hw.AMX), 256, 1024)
	if r := float64(gnr) / float64(spr); math.Abs(r-1.7) > 0.15 {
		t.Errorf("GNR/SPR GEMV ratio = %.2f, want ≈1.7", r)
	}
	// Large-shape standing vs GPUs: 54/31/19/15% of P100/V100/A100/H100.
	for _, c := range []struct {
		gpu  hw.GPUSpec
		want float64
	}{
		{hw.P100, 0.54}, {hw.V100, 0.31}, {hw.A100, 0.19}, {hw.H100, 0.15},
	} {
		g := gemvThroughput(GPUDevice(c.gpu), 256, 1024)
		if r := float64(spr) / float64(g); math.Abs(r-c.want) > 0.05 {
			t.Errorf("SPR/%s GEMV ratio = %.2f, want ≈%.2f", c.gpu.Name, r, c.want)
		}
	}
}

func TestGEMVSmallShapesFavorCPU(t *testing.T) {
	// §4.2: at small B/L the CPU reaches a *higher* fraction of GPU
	// throughput (38% of A100 vs 19% at large shapes) because of GPU
	// kernel-launch overhead.
	spr := CPUDevice(hw.SPR, hw.AMX)
	a100 := GPUDevice(hw.A100)
	small := float64(gemvThroughput(spr, 1, 64)) / float64(gemvThroughput(a100, 1, 64))
	large := float64(gemvThroughput(spr, 256, 1024)) / float64(gemvThroughput(a100, 256, 1024))
	if small <= large {
		t.Errorf("small-shape ratio %.2f should exceed large-shape ratio %.2f", small, large)
	}
	if small < 0.25 {
		t.Errorf("small-shape SPR/A100 ratio = %.2f, want ≥0.25", small)
	}
}

func TestCPUDeviceISAFallback(t *testing.T) {
	// Asking for AMX on Grace (which only has SVE2) degrades to SVE2.
	d := CPUDevice(hw.Grace, hw.AMX)
	if d.Peak != hw.Grace.PeakMatrix {
		t.Errorf("Grace fallback peak = %v, want %v", d.Peak, hw.Grace.PeakMatrix)
	}
	// Asking for AVX512 on SPR uses the vector engine.
	d = CPUDevice(hw.SPR, hw.AVX512)
	if d.Peak != hw.SPR.PeakVector {
		t.Errorf("SPR AVX512 peak = %v, want %v", d.Peak, hw.SPR.PeakVector)
	}
}

func TestUncalibratedDeviceFallsBackToHalfPeak(t *testing.T) {
	spec := hw.GPUSpec{Name: "FutureGPU", MemCapacity: units.GiB, MemBW: units.GBps, PeakHalf: 100 * units.TFLOPS}
	d := GPUDevice(spec)
	if d.Ceiling != 50*units.TFLOPS {
		t.Errorf("fallback ceiling = %v, want 50 TFLOPS", d.Ceiling)
	}
}

func TestEffectiveMatrixRateMonotonic(t *testing.T) {
	d := CPUDevice(hw.SPR, hw.AMX)
	f := func(raw uint16, extra uint16) bool {
		r1 := d.EffectiveMatrixRate(int(raw))
		r2 := d.EffectiveMatrixRate(int(raw) + int(extra) + 1)
		return r2 >= r1 && r2 <= d.Ceiling
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeMonotonicInWork(t *testing.T) {
	d := GPUDevice(hw.A100)
	f := func(fl, by uint32) bool {
		base := d.Time(units.FLOPs(fl), units.Bytes(by), 64)
		more := d.Time(units.FLOPs(fl)*2, units.Bytes(by)*2, 64)
		return more >= base && base >= d.Launch
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZeroRowsUsesCeiling(t *testing.T) {
	d := CPUDevice(hw.SPR, hw.AMX)
	if d.EffectiveMatrixRate(0) != d.Ceiling {
		t.Error("zero rows should return ceiling")
	}
}
