// Package perf turns hardware specifications (package hw) into effective,
// shape-dependent performance: how fast a given device actually executes a
// GEMM or batched GEMV of a given size.
//
// The model is the additive roofline the paper's own latency model uses
// (Eq. 8): a kernel's time is a fixed launch overhead, plus the time to
// stream its operands through device memory, plus the time to execute its
// FLOPs at the device's effective matrix throughput. The effective matrix
// throughput ramps with the number of output rows — small matrices cannot
// fill a tensor-core (or AMX tile) pipeline — saturating at a per-device
// measured ceiling calibrated to the microbenchmark results in §4:
//
//	AVX512 (SPR)  4.4 TFLOPS    P100   8.4 TFLOPS
//	SPR-AMX       20  TFLOPS    V100   80  TFLOPS
//	GNR-AMX       44  TFLOPS    A100   180 TFLOPS
//	                            H100   400 TFLOPS
//
// which reproduces every ratio the paper reports (SPR-AMX = 4.5× AVX512,
// 2.4× P100, 11% of A100, 5% of H100; GNR-AMX = 2.2× SPR, 22% of A100,
// 10% of H100). GEMV throughput is memory-bound and tracks each device's
// sustained stream bandwidth (§4.2), with GPU kernel-launch overhead
// explaining the CPU's relatively better standing at small shapes.
package perf

import (
	"fmt"

	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/units"
)

// Device is a calibrated execution engine: a CPU socket running a specific
// matrix ISA, or a GPU board.
type Device struct {
	// Name identifies the engine, e.g. "SPR-AMX" or "A100-40GB-PCIe".
	Name string
	// Peak is the theoretical peak matrix throughput.
	Peak units.FLOPSRate
	// Ceiling is the measured asymptotic throughput (≤ Peak) reached at
	// large shapes — the §4 calibration values.
	Ceiling units.FLOPSRate
	// RampRows is the output-row count at which the matrix engine reaches
	// half its ceiling — a mild tile-quantization penalty (AMX tiles hold
	// 16 rows; tensor-core MMA fragments are similar). The dominant
	// small-shape effect is the memory roofline in Time, not this ramp.
	RampRows float64
	// MemBW is the device's local memory bandwidth.
	MemBW units.BytesPerSecond
	// StreamEff is the fraction of MemBW sustained by streaming kernels.
	StreamEff float64
	// Launch is the fixed overhead per kernel invocation.
	Launch units.Seconds
}

// gemmCeilings calibrates each engine's measured asymptotic GEMM
// throughput to §4.1. Keys are "<spec name>|<ISA>" for CPUs and the bare
// spec name for GPUs.
var gemmCeilings = map[string]units.FLOPSRate{
	"SPR (Xeon 8460H, 40c)|AMX":    20 * units.TFLOPS,
	"SPR (Xeon 8460H, 40c)|AVX512": 4.4 * units.TFLOPS,
	"GNR (Xeon 6, 128c)|AMX":       44 * units.TFLOPS,
	"GNR (Xeon 6, 128c)|AVX512":    9.7 * units.TFLOPS,
	"Grace (72c, SVE2)|SVE2":       4.8 * units.TFLOPS,
	"P100-16GB":                    8.4 * units.TFLOPS,
	"V100-16GB":                    80 * units.TFLOPS,
	"A100-40GB-PCIe":               180 * units.TFLOPS,
	"A100-80GB-SXM":                185 * units.TFLOPS,
	"H100-80GB-PCIe":               400 * units.TFLOPS,
	"H100-96GB-GH200":              460 * units.TFLOPS,
}

// streamEffs calibrates sustained stream-bandwidth fractions to the §4.2
// GEMV ratios (SPR achieves 54/31/19/15% of P100/V100/A100/H100,
// "consistent with their relative memory bandwidths").
var streamEffs = map[string]float64{
	"P100-16GB":       0.50,
	"V100-16GB":       0.71,
	"A100-40GB-PCIe":  0.67,
	"A100-80GB-SXM":   0.67,
	"H100-80GB-PCIe":  0.66,
	"H100-96GB-GH200": 0.66,
}

// cpuStreamEff gives SPR's 199 GFLOPS GEMV peak on 260 GB/s DDR5.
const cpuStreamEff = 0.765

// defaultCeilingFraction is used for engines absent from the calibration
// table: half of theoretical peak.
const defaultCeilingFraction = 0.5

// CPUDevice builds the calibrated engine for a CPU socket running the
// given matrix ISA. Requesting AMX on a CPU that lacks it degrades to the
// vector engine, mirroring how IPEX falls back on pre-SPR parts.
func CPUDevice(spec hw.CPUSpec, isa hw.ISA) Device {
	peak := spec.PeakVector
	if isa == spec.MatrixISA {
		peak = spec.PeakMatrix
	} else {
		isa = hw.AVX512
		if spec.MatrixISA == hw.SVE2 {
			isa = hw.SVE2
			peak = spec.PeakMatrix
		}
	}
	key := spec.Name + "|" + isa.String()
	ceiling, ok := gemmCeilings[key]
	if !ok {
		ceiling = units.FLOPSRate(defaultCeilingFraction * float64(peak))
	}
	return Device{
		Name:      fmt.Sprintf("%s/%s", spec.Name, isa),
		Peak:      peak,
		Ceiling:   ceiling,
		RampRows:  8,
		MemBW:     spec.MemBW,
		StreamEff: cpuStreamEff,
		// A CPU "kernel launch" is an OpenMP-style fork/join.
		Launch: 2 * units.Microsecond,
	}
}

// GPUDevice builds the calibrated engine for a GPU board.
func GPUDevice(spec hw.GPUSpec) Device {
	ceiling, ok := gemmCeilings[spec.Name]
	if !ok {
		ceiling = units.FLOPSRate(defaultCeilingFraction * float64(spec.PeakHalf))
	}
	se, ok := streamEffs[spec.Name]
	if !ok {
		se = 0.65
	}
	return Device{
		Name:      spec.Name,
		Peak:      spec.PeakHalf,
		Ceiling:   ceiling,
		RampRows:  32,
		MemBW:     spec.MemBW,
		StreamEff: se,
		Launch:    spec.KernelLaunch,
	}
}

// EffectiveMatrixRate returns the throughput the matrix engine sustains
// for a kernel producing the given number of output rows.
func (d Device) EffectiveMatrixRate(rows int) units.FLOPSRate {
	if rows <= 0 {
		return d.Ceiling
	}
	r := float64(rows)
	return units.FLOPSRate(float64(d.Ceiling) * r / (r + d.RampRows))
}

// StreamBW returns the sustained local-memory streaming bandwidth.
func (d Device) StreamBW() units.BytesPerSecond {
	return units.BytesPerSecond(d.StreamEff * float64(d.MemBW))
}

// Time returns the execution time of a kernel with the given FLOP count,
// local-memory traffic, and output-row count, following the paper's
// Eq. (8) additive form plus launch overhead.
func (d Device) Time(flops units.FLOPs, traffic units.Bytes, rows int) units.Seconds {
	t := d.Launch
	t += units.TransferTime(traffic, d.StreamBW(), 0)
	t += units.ComputeTime(flops, d.EffectiveMatrixRate(rows))
	return t
}

// GEMMTime returns the time to compute an (M×K)·(K×N) matrix product in
// BF16 (2-byte elements), counting reads of both operands and the write of
// the result.
func (d Device) GEMMTime(m, k, n int) units.Seconds {
	flops := units.FLOPs(2) * units.FLOPs(m) * units.FLOPs(k) * units.FLOPs(n)
	traffic := units.Bytes(2 * (m*k + k*n + m*n))
	return d.Time(flops, traffic, m)
}

// GEMMThroughput returns the achieved throughput of the (M×K)·(K×N) GEMM.
func (d Device) GEMMThroughput(m, k, n int) units.FLOPSRate {
	flops := units.FLOPs(2) * units.FLOPs(m) * units.FLOPs(k) * units.FLOPs(n)
	t := d.GEMMTime(m, k, n)
	if t <= 0 {
		return d.Ceiling
	}
	return units.FLOPSRate(float64(flops) / float64(t))
}

// BatchedGEMVTime returns the time for `batch` independent (1×K)·(K×N)
// vector-matrix products — the attention-scoring shape
// (B·n_h, 1, d_h)·(B·n_h, d_h, L). All batch elements share one launch.
func (d Device) BatchedGEMVTime(batch, k, n int) units.Seconds {
	flops := units.FLOPs(2) * units.FLOPs(batch) * units.FLOPs(k) * units.FLOPs(n)
	traffic := units.Bytes(2 * batch * (k + k*n + n))
	return d.Time(flops, traffic, batch)
}

// BatchedGEMVThroughput returns the achieved throughput of the batched
// GEMV above.
func (d Device) BatchedGEMVThroughput(batch, k, n int) units.FLOPSRate {
	flops := units.FLOPs(2) * units.FLOPs(batch) * units.FLOPs(k) * units.FLOPs(n)
	t := d.BatchedGEMVTime(batch, k, n)
	if t <= 0 {
		return units.FLOPSRate(d.StreamEff * float64(d.MemBW))
	}
	return units.FLOPSRate(float64(flops) / float64(t))
}
