package perf

import (
	"math"
	"testing"

	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/units"
)

// synthObs samples a ground-truth device at several shapes.
func synthObs(d Device) []Observation {
	var obs []Observation
	for _, m := range []int{16, 64, 256, 1024, 4096, 16384} {
		obs = append(obs, Observation{M: m, K: 4096, N: 16384, Rate: d.GEMMThroughput(m, 4096, 16384)})
	}
	return obs
}

func TestFitRecoversKnownDevice(t *testing.T) {
	truth := CPUDevice(hw.SPR, hw.AMX)
	truth.Ceiling = 27 * units.TFLOPS
	truth.RampRows = 40
	obs := synthObs(truth)

	template := CPUDevice(hw.SPR, hw.AMX) // wrong ceiling/ramp, right memory
	got, err := Fit(template, obs)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(float64(got.Ceiling)-float64(truth.Ceiling)) / float64(truth.Ceiling); rel > 0.05 {
		t.Errorf("ceiling = %v, want %v (rel err %.3f)", got.Ceiling, truth.Ceiling, rel)
	}
	if e := FitError(got, obs); e > 0.03 {
		t.Errorf("RMS relative error %.3f after fit, want ≤0.03", e)
	}
}

func TestFitImprovesOverTemplate(t *testing.T) {
	// Pretend the user measured a GPU 30% below our calibration.
	truth := GPUDevice(hw.A100)
	truth.Ceiling = units.FLOPSRate(0.7 * float64(truth.Ceiling))
	obs := synthObs(truth)
	template := GPUDevice(hw.A100)
	before := FitError(template, obs)
	fitted, err := Fit(template, obs)
	if err != nil {
		t.Fatal(err)
	}
	after := FitError(fitted, obs)
	if after >= before {
		t.Errorf("fit did not improve: %.3f → %.3f", before, after)
	}
	if after > 0.05 {
		t.Errorf("post-fit error %.3f too high", after)
	}
}

func TestFitValidation(t *testing.T) {
	d := CPUDevice(hw.SPR, hw.AMX)
	if _, err := Fit(d, nil); err == nil {
		t.Error("no observations accepted")
	}
	if _, err := Fit(d, []Observation{{M: 1, K: 1, N: 1, Rate: 1}, {M: 0, K: 1, N: 1, Rate: 1}}); err == nil {
		t.Error("invalid observation accepted")
	}
}

func TestFitErrorEmpty(t *testing.T) {
	if FitError(CPUDevice(hw.SPR, hw.AMX), nil) != 0 {
		t.Error("empty observations should give zero error")
	}
}
