package perf

import (
	"fmt"
	"math"

	"github.com/lia-sim/lia/internal/units"
)

// Observation is one measured GEMM throughput point: the shape (output
// rows M, inner K, output columns N) and the achieved rate. The paper's
// §4 microbenchmarks produce exactly this kind of data; Fit turns it
// back into a calibrated Device.
type Observation struct {
	// M, K and N give the GEMM shape.
	M, K, N int
	// Rate is the measured throughput.
	Rate units.FLOPSRate
}

// Fit calibrates a device's Ceiling and RampRows against measured GEMM
// observations, holding the memory system (MemBW, StreamEff, Launch)
// fixed at the template's values. It minimizes the sum of squared
// relative errors over a log-spaced grid refined by coordinate descent —
// no gradients, deterministic, adequate for the two-parameter surface.
//
// This is the tool a user points at their own CPU/GPU microbenchmark
// results to extend the calibration table beyond the paper's hardware.
func Fit(template Device, obs []Observation) (Device, error) {
	if len(obs) < 2 {
		return Device{}, fmt.Errorf("perf: need at least 2 observations, got %d", len(obs))
	}
	for _, o := range obs {
		if o.M <= 0 || o.K <= 0 || o.N <= 0 || o.Rate <= 0 {
			return Device{}, fmt.Errorf("perf: invalid observation %+v", o)
		}
	}

	loss := func(ceiling, ramp float64) float64 {
		d := template
		d.Ceiling = units.FLOPSRate(ceiling)
		d.RampRows = ramp
		var sum float64
		for _, o := range obs {
			pred := float64(d.GEMMThroughput(o.M, o.K, o.N))
			rel := (pred - float64(o.Rate)) / float64(o.Rate)
			sum += rel * rel
		}
		return sum
	}

	// Seed the ceiling from the largest observed rate (a lower bound on
	// the true ceiling) and search multiplicatively around it.
	var maxRate float64
	for _, o := range obs {
		maxRate = math.Max(maxRate, float64(o.Rate))
	}
	bestC, bestR := maxRate, 16.0
	bestLoss := loss(bestC, bestR)
	for _, cMul := range []float64{1.0, 1.05, 1.1, 1.2, 1.4, 1.7, 2.0, 2.5} {
		for _, r := range []float64{0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024} {
			if l := loss(maxRate*cMul, r); l < bestLoss {
				bestC, bestR, bestLoss = maxRate*cMul, r, l
			}
		}
	}
	// Coordinate descent refinement.
	for iter := 0; iter < 60; iter++ {
		improved := false
		for _, step := range []float64{1.1, 1.02, 1.005} {
			for _, c := range []float64{bestC * step, bestC / step} {
				if l := loss(c, bestR); l < bestLoss {
					bestC, bestLoss, improved = c, l, true
				}
			}
			for _, r := range []float64{bestR * step, bestR / step} {
				if l := loss(bestC, r); l < bestLoss {
					bestR, bestLoss, improved = r, l, true
				}
			}
		}
		if !improved {
			break
		}
	}

	out := template
	out.Ceiling = units.FLOPSRate(bestC)
	out.RampRows = bestR
	return out, nil
}

// FitError reports the root-mean-square relative error of a device
// against observations — the §7 latency model quotes 12% average error;
// this lets a user quantify theirs.
func FitError(d Device, obs []Observation) float64 {
	if len(obs) == 0 {
		return 0
	}
	var sum float64
	for _, o := range obs {
		pred := float64(d.GEMMThroughput(o.M, o.K, o.N))
		rel := (pred - float64(o.Rate)) / float64(o.Rate)
		sum += rel * rel
	}
	return math.Sqrt(sum / float64(len(obs)))
}
