// Package energy models whole-system power draw and per-token energy the
// way §7.5 measures it with ipmitool: average system power during
// inference times latency, divided by generated tokens. Power splits into
// a static platform floor plus idle and active components per device, so
// frameworks that finish faster (less static energy) or use the more
// efficient device for compute-heavy phases (LIA's GPU prefill) come out
// ahead — the two effects Figure 12 attributes LIA's 1.1–10.3× advantage
// to.
package energy

import (
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/units"
)

// Idle power fractions of TDP: a powered-but-idle Xeon burns roughly a
// third of its TDP; an idle GPU far less.
const (
	cpuIdleFraction = 0.35
	gpuIdleFraction = 0.12
)

// Model is a calibrated system power model.
type Model struct {
	// Base is the always-on platform power (fans, PSU loss, board, DRAM).
	Base units.Watts
	// CPUIdle and CPUActive bound the CPU's draw; actual draw scales with
	// busy fraction.
	CPUIdle, CPUActive units.Watts
	// GPUIdle and GPUActive bound one GPU's draw.
	GPUIdle, GPUActive units.Watts
	// GPUCount scales the GPU component.
	GPUCount int
}

// ForSystem derives the power model from a system's TDPs.
func ForSystem(sys hw.System) Model {
	return Model{
		Base:      sys.BasePower,
		CPUIdle:   units.Watts(cpuIdleFraction * float64(sys.CPU.TDP)),
		CPUActive: sys.CPU.TDP,
		GPUIdle:   units.Watts(gpuIdleFraction * float64(sys.GPU.TDP)),
		GPUActive: sys.GPU.TDP,
		GPUCount:  sys.GPUCount,
	}
}

// Energy integrates system power over an inference run: latency is the
// wall-clock time; cpuBusy and gpuBusy are the devices' accumulated
// service times (gpuBusy is per-GPU when all GPUs work in lockstep).
func (m Model) Energy(latency, cpuBusy, gpuBusy units.Seconds) units.Joules {
	if latency <= 0 {
		return 0
	}
	clamp := func(busy units.Seconds) float64 {
		f := float64(busy) / float64(latency)
		if f < 0 {
			return 0
		}
		if f > 1 {
			return 1
		}
		return f
	}
	cpuW := float64(m.CPUIdle) + (float64(m.CPUActive)-float64(m.CPUIdle))*clamp(cpuBusy)
	gpuW := (float64(m.GPUIdle) + (float64(m.GPUActive)-float64(m.GPUIdle))*clamp(gpuBusy)) * float64(m.GPUCount)
	watts := float64(m.Base) + cpuW + gpuW
	return units.Joules(watts * float64(latency))
}

// AveragePower returns the mean draw implied by Energy over latency.
func (m Model) AveragePower(latency, cpuBusy, gpuBusy units.Seconds) units.Watts {
	if latency <= 0 {
		return 0
	}
	return units.Watts(float64(m.Energy(latency, cpuBusy, gpuBusy)) / float64(latency))
}

// PerToken divides energy by generated tokens (§7.5's energy/token).
func PerToken(e units.Joules, tokens int) units.Joules {
	if tokens <= 0 {
		return 0
	}
	return e / units.Joules(tokens)
}
