package energy

import (
	"math"
	"testing"

	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/units"
)

func TestForSystemFields(t *testing.T) {
	m := ForSystem(hw.SPRA100)
	if m.Base != hw.SPRA100.BasePower || m.CPUActive != hw.SPR.TDP || m.GPUActive != hw.A100.TDP {
		t.Errorf("model fields wrong: %+v", m)
	}
	if m.CPUIdle >= m.CPUActive || m.GPUIdle >= m.GPUActive {
		t.Error("idle power must be below active power")
	}
}

func TestEnergyBounds(t *testing.T) {
	m := ForSystem(hw.SPRA100)
	lat := units.Seconds(10)
	idle := m.Energy(lat, 0, 0)
	flatOut := m.Energy(lat, lat, lat)
	if idle <= 0 || flatOut <= idle {
		t.Errorf("idle %v, flat-out %v", idle, flatOut)
	}
	// Flat-out power equals TDP-ish: base + cpu + gpu.
	wantW := float64(hw.SPRA100.TDP())
	if got := float64(flatOut) / 10; math.Abs(got-wantW) > 1 {
		t.Errorf("flat-out power = %v W, want %v", got, wantW)
	}
	// Busy beyond latency clamps.
	if m.Energy(lat, 2*lat, 2*lat) != flatOut {
		t.Error("busy fraction should clamp at 1")
	}
	if m.Energy(0, 0, 0) != 0 {
		t.Error("zero latency → zero energy")
	}
}

func TestAveragePowerAndPerToken(t *testing.T) {
	m := ForSystem(hw.SPRA100)
	p := m.AveragePower(10, 5, 0)
	if p <= m.Base || p >= hw.SPRA100.TDP() {
		t.Errorf("average power %v out of range", p)
	}
	if PerToken(1000, 100) != 10 {
		t.Error("PerToken wrong")
	}
	if PerToken(1000, 0) != 0 {
		t.Error("PerToken with zero tokens should be 0")
	}
}

func TestFasterRunUsesLessStaticEnergy(t *testing.T) {
	// Same busy work, shorter wall clock → less energy (Figure 12's
	// static-power effect).
	m := ForSystem(hw.SPRA100)
	slow := m.Energy(100, 10, 10)
	fast := m.Energy(20, 10, 10)
	if fast >= slow {
		t.Errorf("fast run energy %v should undercut slow %v", fast, slow)
	}
}
