package runner

import (
	"fmt"
	"sync"
)

// Cache is a concurrency-safe memoization cache with single-flight
// semantics: the first Do call for a key computes the value while
// concurrent callers with the same key block until that computation
// finishes and then share its result (value or error) — an expensive
// cell is computed exactly once no matter how many workers request it.
//
// The zero value is ready to use. Keys must be comparable and must
// capture every input the computation depends on; see DESIGN.md for the
// keying of the engine and optimizer caches built on top of this.
type Cache[K comparable, V any] struct {
	mu      sync.Mutex
	entries map[K]*cacheEntry[V]
}

type cacheEntry[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Do returns the cached value for key, computing it with fn on the
// first call. Errors are cached alongside values: a failed computation
// is not retried (experiment configs are static — an error is a bug,
// not a transient).
func (c *Cache[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	c.mu.Lock()
	if c.entries == nil {
		c.entries = make(map[K]*cacheEntry[V])
	}
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		<-e.done
		return e.val, e.err
	}
	e := &cacheEntry[V]{done: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()

	// Compute outside the lock so unrelated keys proceed concurrently.
	// A panicking fn must still close done, or waiters deadlock.
	finished := false
	defer func() {
		if !finished {
			e.err = fmt.Errorf("runner: cache computation panicked")
			close(e.done)
		}
	}()
	e.val, e.err = fn()
	finished = true
	close(e.done)
	return e.val, e.err
}

// Len returns the number of cached keys (in-flight entries included).
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Reset drops every cached entry. In-flight computations still complete
// and serve their current waiters, but later Do calls recompute.
func (c *Cache[K, V]) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = nil
}
