package runner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapPreservesInputOrder: results land positionally regardless of
// which worker finishes first (later items complete sooner here).
func TestMapPreservesInputOrder(t *testing.T) {
	SetWorkers(8)
	defer SetWorkers(0)
	items := make([]int, 64)
	for i := range items {
		items[i] = i
	}
	got, err := Map(context.Background(), items, func(_ context.Context, i int) (string, error) {
		time.Sleep(time.Duration(64-i) * 100 * time.Microsecond) // reverse finish order
		return fmt.Sprintf("r%d", i), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range got {
		if want := fmt.Sprintf("r%d", i); r != want {
			t.Fatalf("result[%d] = %q, want %q", i, r, want)
		}
	}
}

// TestMapSequentialMatchesParallel: the -j 1 fast path and the
// concurrent path produce identical results.
func TestMapSequentialMatchesParallel(t *testing.T) {
	items := []int{3, 1, 4, 1, 5, 9, 2, 6}
	run := func(workers int) []int {
		SetWorkers(workers)
		defer SetWorkers(0)
		got, err := Map(context.Background(), items, func(_ context.Context, v int) (int, error) {
			return v * v, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	seq, par := run(1), run(8)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("workers=1 vs workers=8 diverge at %d: %d vs %d", i, seq[i], par[i])
		}
	}
}

// TestMapPropagatesFirstError: a failing item surfaces with its input
// index, and no result slice is returned.
func TestMapPropagatesFirstError(t *testing.T) {
	SetWorkers(4)
	defer SetWorkers(0)
	boom := errors.New("boom")
	got, err := Map(context.Background(), []int{0, 1, 2, 3, 4, 5}, func(_ context.Context, i int) (int, error) {
		if i == 2 {
			return 0, boom
		}
		return i, nil
	})
	if got != nil {
		t.Error("failed Map must not return results")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

// TestMapCancellation: a canceled context stops the run and surfaces
// context.Canceled.
func TestMapCancellation(t *testing.T) {
	SetWorkers(2)
	defer SetWorkers(0)
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	items := make([]int, 100)
	_, err := Map(ctx, items, func(ctx context.Context, _ int) (int, error) {
		if started.Add(1) == 3 {
			cancel()
		}
		time.Sleep(time.Millisecond)
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := started.Load(); n == 100 {
		t.Error("cancellation did not stop the run")
	}
}

// TestMapEmpty: an empty input is a no-op.
func TestMapEmpty(t *testing.T) {
	got, err := Map(context.Background(), nil, func(_ context.Context, _ int) (int, error) {
		t.Fatal("fn called for empty input")
		return 0, nil
	})
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

// TestCacheSingleFlight: an expensive cell requested by many concurrent
// workers is computed exactly once, and everyone sees the same value.
func TestCacheSingleFlight(t *testing.T) {
	var (
		cache Cache[string, int]
		calls atomic.Int64
		wg    sync.WaitGroup
	)
	const waiters = 32
	results := make([]int, waiters)
	start := make(chan struct{})
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			v, err := cache.Do("cell", func() (int, error) {
				calls.Add(1)
				time.Sleep(5 * time.Millisecond) // widen the race window
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	close(start)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("expensive cell computed %d times, want exactly 1", n)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("waiter %d saw %d", i, v)
		}
	}
	if cache.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", cache.Len())
	}
}

// TestCacheDistinctKeys: different keys compute independently.
func TestCacheDistinctKeys(t *testing.T) {
	var cache Cache[int, int]
	for i := 0; i < 10; i++ {
		v, err := cache.Do(i, func() (int, error) { return i * 2, nil })
		if err != nil || v != i*2 {
			t.Fatalf("key %d: got %d, %v", i, v, err)
		}
	}
	if cache.Len() != 10 {
		t.Errorf("Len = %d, want 10", cache.Len())
	}
	cache.Reset()
	if cache.Len() != 0 {
		t.Error("Reset did not clear the cache")
	}
}

// TestCacheCachesErrors: a failed computation is remembered, not retried.
func TestCacheCachesErrors(t *testing.T) {
	var (
		cache Cache[string, int]
		calls int
	)
	boom := errors.New("boom")
	for i := 0; i < 3; i++ {
		if _, err := cache.Do("bad", func() (int, error) { calls++; return 0, boom }); !errors.Is(err, boom) {
			t.Fatalf("err = %v", err)
		}
	}
	if calls != 1 {
		t.Fatalf("failing fn ran %d times, want 1", calls)
	}
}

// TestCachePanicDoesNotDeadlockWaiters: a panicking computation releases
// concurrent waiters with an error instead of blocking them forever.
func TestCachePanicDoesNotDeadlockWaiters(t *testing.T) {
	var cache Cache[string, int]
	done := make(chan error, 1)
	go func() {
		defer func() { recover() }()
		cache.Do("k", func() (int, error) {
			go func() {
				_, err := cache.Do("k", func() (int, error) { return 0, nil })
				done <- err
			}()
			time.Sleep(2 * time.Millisecond)
			panic("kaboom")
		})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("waiter after a panic should see an error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter deadlocked behind a panicking computation")
	}
}

// TestPoolFirstErrorBySubmissionOrder: Wait reports the earliest
// submitted failure and skips unstarted jobs after it.
func TestPoolFirstErrorBySubmissionOrder(t *testing.T) {
	SetWorkers(2)
	defer SetWorkers(0)
	p := NewPool(context.Background())
	errA := errors.New("a")
	p.Go(func(context.Context) error { time.Sleep(time.Millisecond); return errA })
	p.Go(func(context.Context) error { return errors.New("b") })
	err := p.Wait()
	if !errors.Is(err, errA) {
		t.Fatalf("err = %v, want first-submitted failure", err)
	}
}

// TestPoolRunsAll: every submitted job runs when none fail.
func TestPoolRunsAll(t *testing.T) {
	SetWorkers(4)
	defer SetWorkers(0)
	var ran atomic.Int64
	p := NewPool(context.Background())
	for i := 0; i < 20; i++ {
		p.Go(func(context.Context) error { ran.Add(1); return nil })
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 20 {
		t.Fatalf("ran %d/20 jobs", ran.Load())
	}
}
