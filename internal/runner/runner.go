// Package runner is the repo's deterministic parallel execution layer:
// a bounded worker pool that fans independent jobs out across
// GOMAXPROCS-many workers while keeping results in input order, and a
// concurrency-safe single-flight memoization cache (cache.go) that the
// engine and optimizer front with.
//
// Determinism contract: Map returns results positionally (result[i]
// belongs to items[i]) no matter how the scheduler interleaves workers,
// and error propagation picks the lowest-index failure, so a parallel
// run is byte-for-byte equivalent to the sequential one. Callers must
// only supply pure jobs — anything keyed off shared mutable state or a
// shared RNG breaks the contract, not the pool.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// workerOverride holds the -j override; 0 means "use GOMAXPROCS".
var workerOverride atomic.Int64

// SetWorkers overrides the default worker count used by Map and NewPool
// (the lia-bench -j flag). n <= 0 restores the GOMAXPROCS default;
// n == 1 restores fully sequential execution.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workerOverride.Store(int64(n))
}

// Workers returns the worker count Map and NewPool currently use.
func Workers() int {
	if n := int(workerOverride.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn over every item on up to Workers() goroutines and returns
// the results in input order. The first error (by input index, which is
// deterministic for pure jobs) cancels the remaining unstarted items and
// is returned; results computed before the failure are discarded with it.
// A canceled ctx stops new items from starting and surfaces ctx.Err()
// unless an item error takes precedence at a lower index.
func Map[T, R any](ctx context.Context, items []T, fn func(context.Context, T) (R, error)) ([]R, error) {
	results := make([]R, len(items))
	if len(items) == 0 {
		return results, ctx.Err()
	}
	workers := Workers()
	if workers > len(items) {
		workers = len(items)
	}
	if workers == 1 {
		// Sequential fast path: no goroutines, exact -j 1 semantics.
		for i := range items {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r, err := fn(ctx, items[i])
			if err != nil {
				return nil, fmt.Errorf("runner: item %d: %w", i, err)
			}
			results[i] = r
		}
		return results, nil
	}

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next atomic.Int64
		errs = make([]error, len(items)) // job errors only, by input index
		wg   sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				if ctx.Err() != nil {
					continue // drained after a failure or cancellation
				}
				r, err := fn(ctx, items[i])
				if err != nil {
					errs[i] = err
					cancel()
					continue
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	// Job errors take precedence, lowest input index first: for pure jobs
	// that choice is independent of scheduling.
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("runner: item %d: %w", i, err)
		}
	}
	if err := parent.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// Pool is a bounded worker pool for heterogeneous jobs: Go submits a
// job, Wait blocks until all submitted jobs finish and returns the
// first error in submission order. At most Workers() (at NewPool time)
// jobs run concurrently; once a job fails, later-submitted jobs that
// have not started yet are skipped with the pool context canceled.
type Pool struct {
	parent context.Context
	ctx    context.Context
	cancel context.CancelFunc
	sem    chan struct{}
	wg     sync.WaitGroup

	mu   sync.Mutex
	errs []error // genuine job failures only, indexed by submission order
}

// NewPool returns a pool bounded at Workers() concurrent jobs.
func NewPool(ctx context.Context) *Pool {
	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	return &Pool{parent: parent, ctx: ctx, cancel: cancel, sem: make(chan struct{}, Workers())}
}

// Go submits a job. It never blocks the caller beyond pool admission.
func (p *Pool) Go(fn func(context.Context) error) {
	p.mu.Lock()
	idx := len(p.errs)
	p.errs = append(p.errs, nil)
	p.mu.Unlock()

	p.wg.Add(1)
	p.sem <- struct{}{}
	if p.ctx.Err() != nil {
		// Canceled before this job could start: skip it at admission
		// time, recording nothing — the cause is already held at the
		// failing job's index (or by the parent context), and recording
		// ctx.Err() here could mask a genuine failure at a higher index.
		// Deciding here rather than in the goroutine means a job
		// admitted before any failure always runs to completion, so its
		// error is always recorded (the Map ordering guarantee).
		<-p.sem
		p.wg.Done()
		return
	}
	go func() {
		defer func() {
			<-p.sem
			p.wg.Done()
		}()
		if err := fn(p.ctx); err != nil {
			p.cancel()
			p.mu.Lock()
			p.errs[idx] = err
			p.mu.Unlock()
		}
	}()
}

// Wait blocks for all submitted jobs and returns the first genuine job
// failure by submission order, falling back to the parent context's
// error, and nil when every job succeeded. Cancellation-skipped jobs
// never shadow the failure that triggered the cancellation.
func (p *Pool) Wait() error {
	p.wg.Wait()
	p.cancel()
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, err := range p.errs {
		if err != nil {
			return fmt.Errorf("runner: job %d: %w", i, err)
		}
	}
	return p.parent.Err()
}
