// Package trace generates synthetic LLM inference workloads with the
// statistics the paper takes from the Azure LLM inference traces (§7,
// "Token sequence lengths"): input token lengths uniformly distributed
// between 32 and the model-defined maximum, and output lengths clustered
// around 32 tokens (code traces) or 256 tokens (conversation traces).
package trace

import (
	"fmt"
	"math"
	"math/rand"
)

// Kind selects which trace family a workload mimics.
type Kind int

// Trace families.
const (
	// Code mimics the code-completion trace (average output 32 tokens).
	Code Kind = iota
	// Conversation mimics the chat trace (average output 256 tokens).
	Conversation
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == Code {
		return "code"
	}
	return "conversation"
}

// MeanOutput returns the trace family's average output length.
func (k Kind) MeanOutput() int {
	if k == Code {
		return 32
	}
	return 256
}

// Request is one inference request.
type Request struct {
	// ID numbers the request within its generator.
	ID int
	// InputLen is the prompt length in tokens.
	InputLen int
	// OutputLen is the number of tokens to generate.
	OutputLen int
	// Kind is the trace family the request was drawn from (meaningful
	// for blended streams, where families interleave).
	Kind Kind
}

// Generator produces deterministic synthetic requests: the same seed
// always yields the same stream. It is NOT safe for concurrent use —
// the draws mutate the unsynchronized rng, and interleaving would also
// destroy per-seed reproducibility. Give each goroutine its own
// Generator (same seed ⇒ same stream makes that cheap).
type Generator struct {
	rng      *rand.Rand
	kind     Kind
	minIn    int
	maxIn    int
	produced int
}

// NewGenerator returns a generator for the given trace family. Input
// lengths are drawn uniformly from [minIn, maxIn], matching the paper's
// observation that Azure input lengths are uniformly distributed.
func NewGenerator(kind Kind, minIn, maxIn int, seed int64) (*Generator, error) {
	if minIn < 1 || maxIn < minIn {
		return nil, fmt.Errorf("trace: invalid input-length range [%d, %d]", minIn, maxIn)
	}
	return &Generator{
		rng:   rand.New(rand.NewSource(seed)),
		kind:  kind,
		minIn: minIn,
		maxIn: maxIn,
	}, nil
}

// Next returns the next request. Output lengths follow a geometric
// distribution on {1, 2, ...} with the family mean (success probability
// p = 1/mean) — a heavy-ish tail like real conversation traces.
//
// The draw is closed-form inverse-CDF sampling, X = 1 + ⌊ln(1−U)/ln(1−p)⌋
// with U ∈ [0, 1), so 1−U ∈ (0, 1] keeps the logarithm finite and U=0
// lands on the minimum of one token. E[X] = 1/p = mean exactly. The
// previous per-trial Bernoulli loop cost O(mean) RNG draws per request
// and silently truncated the tail at 8×mean, biasing the sample mean
// low; this form is O(1) and untruncated, and consumes exactly one
// uniform variate so per-seed request streams stay deterministic.
func (g *Generator) Next() Request {
	g.produced++
	in := g.minIn + g.rng.Intn(g.maxIn-g.minIn+1)
	p := 1 / float64(g.kind.MeanOutput())
	u := g.rng.Float64()
	out := 1 + int(math.Log(1-u)/math.Log(1-p))
	return Request{ID: g.produced, InputLen: in, OutputLen: out, Kind: g.kind}
}

// Batch draws n requests.
func (g *Generator) Batch(n int) []Request {
	out := make([]Request, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Workload is a fixed-shape inference job: the (B, L_in, L_out)
// configuration every experiment in §7 is parameterized by.
type Workload struct {
	// Batch is the batch size B.
	Batch int
	// InputLen is L_in.
	InputLen int
	// OutputLen is L_out.
	OutputLen int
}

// Validate reports shape errors.
func (w Workload) Validate() error {
	if w.Batch < 1 || w.InputLen < 1 || w.OutputLen < 1 {
		return fmt.Errorf("trace: workload %+v has non-positive dimensions", w)
	}
	return nil
}

// TotalTokens returns the number of generated tokens (B × L_out).
func (w Workload) TotalTokens() int { return w.Batch * w.OutputLen }

// String implements fmt.Stringer.
func (w Workload) String() string {
	return fmt.Sprintf("B=%d Lin=%d Lout=%d", w.Batch, w.InputLen, w.OutputLen)
}

// RepresentativeInputs returns the paper's L_in evaluation grid for a
// given output length: 32 up to the model maximum (2048) minus L_out
// (2016 when L_out=32, 1792 when L_out=256).
func RepresentativeInputs(maxSeqLen, outputLen int) []int {
	grid := []int{32, 256, 512, 1024}
	lMax := maxSeqLen - outputLen
	if lMax > grid[len(grid)-1] {
		grid = append(grid, lMax)
	}
	var out []int
	for _, l := range grid {
		if l <= lMax {
			out = append(out, l)
		}
	}
	return out
}

// RepresentativeOutputs returns the paper's two L_out settings.
func RepresentativeOutputs() []int { return []int{32, 256} }

// AverageRequest summarizes a request slice as a Workload with the mean
// input and output lengths (batch = len(reqs)).
func AverageRequest(reqs []Request) (Workload, error) {
	if len(reqs) == 0 {
		return Workload{}, fmt.Errorf("trace: empty request slice")
	}
	var in, out int
	for _, r := range reqs {
		in += r.InputLen
		out += r.OutputLen
	}
	return Workload{
		Batch:     len(reqs),
		InputLen:  in / len(reqs),
		OutputLen: out / len(reqs),
	}, nil
}
