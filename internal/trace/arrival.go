package trace

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/lia-sim/lia/internal/units"
)

// ArrivalProcess selects how request arrival times are spaced. All
// three processes share one long-run mean rate; they differ in how the
// load clusters — the axis the scenario lab's cells sweep, because
// batching, shedding, and KV pressure react to clustering, not to the
// average.
type ArrivalProcess int

// Arrival processes.
const (
	// Poisson is the memoryless baseline: i.i.d. exponential gaps.
	Poisson ArrivalProcess = iota
	// Bursty clusters arrivals: burst epochs are Poisson, each epoch
	// releases a geometric-sized batch of near-simultaneous requests —
	// the "thundering herd" that saturates the submit queue.
	Bursty
	// Diurnal modulates the Poisson rate sinusoidally over a period, the
	// day/night load swing scaled down to an experiment's timescale.
	Diurnal
)

// String implements fmt.Stringer.
func (p ArrivalProcess) String() string {
	switch p {
	case Poisson:
		return "poisson"
	case Bursty:
		return "bursty"
	case Diurnal:
		return "diurnal"
	}
	return fmt.Sprintf("ArrivalProcess(%d)", int(p))
}

// ArrivalSpec shapes an arrival schedule.
type ArrivalSpec struct {
	Process ArrivalProcess
	// Rate is the long-run mean arrival rate in requests per second
	// (> 0) for every process.
	Rate float64
	// BurstMean (Bursty only) is the mean burst size (≥ 1, geometric).
	// Burst epochs arrive at Rate/BurstMean so the long-run rate stays
	// Rate.
	BurstMean float64
	// BurstGap (Bursty only) spaces requests within one burst (≥ 0;
	// 0 = simultaneous arrivals, the hardest case for the queue).
	BurstGap units.Seconds
	// Period (Diurnal only) is the modulation cycle in seconds (> 0).
	Period units.Seconds
	// Depth (Diurnal only) is the modulation depth in [0, 1):
	// rate(t) = Rate·(1 + Depth·sin(2πt/Period)).
	Depth float64
}

// Validate reports spec errors.
func (s ArrivalSpec) Validate() error {
	if s.Rate <= 0 || math.IsInf(s.Rate, 0) || math.IsNaN(s.Rate) {
		return fmt.Errorf("trace: arrival rate must be positive and finite, got %g", s.Rate)
	}
	switch s.Process {
	case Poisson:
	case Bursty:
		if s.BurstMean < 1 {
			return fmt.Errorf("trace: burst mean must be ≥1, got %g", s.BurstMean)
		}
		if s.BurstGap < 0 {
			return fmt.Errorf("trace: burst gap must be ≥0, got %v", s.BurstGap)
		}
	case Diurnal:
		if s.Period <= 0 {
			return fmt.Errorf("trace: diurnal period must be positive, got %v", s.Period)
		}
		if s.Depth < 0 || s.Depth >= 1 {
			return fmt.Errorf("trace: diurnal depth %g outside [0, 1)", s.Depth)
		}
	default:
		return fmt.Errorf("trace: unknown arrival process %d", int(s.Process))
	}
	return nil
}

// ArrivalGen produces a deterministic non-decreasing schedule of
// absolute arrival times. Like Generator it is NOT safe for concurrent
// use — give each goroutine its own instance (same (spec, seed) ⇒ same
// schedule makes that cheap).
type ArrivalGen struct {
	rng  *rand.Rand
	spec ArrivalSpec

	clock units.Seconds
	// Bursty state: requests of the current burst still to release.
	pending int
	// Diurnal state: the thinning clock (candidate-event time at the
	// peak rate; accepted candidates become arrivals).
	thin units.Seconds
}

// NewArrivalGen builds a schedule generator; the same (spec, seed) pair
// always yields the same schedule.
func NewArrivalGen(spec ArrivalSpec, seed int64) (*ArrivalGen, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &ArrivalGen{rng: rand.New(rand.NewSource(seed)), spec: spec}, nil
}

// Next returns the next absolute arrival time.
func (g *ArrivalGen) Next() units.Seconds {
	switch g.spec.Process {
	case Bursty:
		if g.pending > 0 {
			g.pending--
			g.clock += g.spec.BurstGap
			return g.clock
		}
		// Next burst epoch: exponential gap at the epoch rate, then a
		// geometric burst size (closed-form inverse CDF, E = BurstMean).
		epochRate := g.spec.Rate / g.spec.BurstMean
		g.clock += units.Seconds(g.rng.ExpFloat64() / epochRate)
		p := 1 / g.spec.BurstMean
		u := g.rng.Float64()
		size := 1
		if p < 1 {
			size = 1 + int(math.Log(1-u)/math.Log(1-p))
		}
		g.pending = size - 1 // this call releases the burst's first request
		return g.clock
	case Diurnal:
		// Lewis–Shedler thinning at the peak rate: candidates arrive at
		// Rate·(1+Depth); each is kept with probability rate(t)/peak.
		peak := g.spec.Rate * (1 + g.spec.Depth)
		for {
			g.thin += units.Seconds(g.rng.ExpFloat64() / peak)
			rate := g.spec.Rate * (1 + g.spec.Depth*math.Sin(2*math.Pi*float64(g.thin/g.spec.Period)))
			if g.rng.Float64()*peak <= rate {
				g.clock = g.thin
				return g.clock
			}
		}
	default: // Poisson
		g.clock += units.Seconds(g.rng.ExpFloat64() / g.spec.Rate)
		return g.clock
	}
}

// Schedule draws n arrival times (non-decreasing).
func (g *ArrivalGen) Schedule(n int) []units.Seconds {
	out := make([]units.Seconds, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}
