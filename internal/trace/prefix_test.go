package trace

import (
	"reflect"
	"sync"
	"testing"
)

// TestGeneratorBatchDeterministic pins the batch-level contract: the
// same seed yields an identical Batch(n), and a different seed does not.
func TestGeneratorBatchDeterministic(t *testing.T) {
	g1, err := NewGenerator(Conversation, 32, 2048, 42)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := NewGenerator(Conversation, 32, 2048, 42)
	a, b := g1.Batch(200), g2.Batch(200)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different Batch(200)")
	}
	g3, _ := NewGenerator(Conversation, 32, 2048, 43)
	if reflect.DeepEqual(a, g3.Batch(200)) {
		t.Fatal("different seeds produced identical Batch(200)")
	}
}

// TestGeneratorPerGoroutineClones guards the documented concurrency
// contract: a Generator must not be shared across goroutines; the
// supported pattern is one same-seed instance per goroutine, which this
// test shows yields identical streams — sharing is never needed.
func TestGeneratorPerGoroutineClones(t *testing.T) {
	want, err := NewGenerator(Code, 32, 256, 9)
	if err != nil {
		t.Fatal(err)
	}
	ref := want.Batch(64)
	const workers = 8
	streams := make([][]Request, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g, err := NewGenerator(Code, 32, 256, 9) // own instance, same seed
			if err != nil {
				t.Error(err)
				return
			}
			streams[w] = g.Batch(64)
		}(w)
	}
	wg.Wait()
	for w, s := range streams {
		if !reflect.DeepEqual(s, ref) {
			t.Fatalf("worker %d's clone diverged from the reference stream", w)
		}
	}
}

func testPrefixSpec() PrefixSpec {
	return PrefixSpec{
		Prefixes:     4,
		PrefixTokens: 48,
		Skew:         1.2,
		Vocab:        128,
		MinSuffix:    4,
		MaxSuffix:    12,
		OutputTokens: 8,
	}
}

func TestPrefixGeneratorDeterministic(t *testing.T) {
	g1, err := NewPrefixGenerator(testPrefixSpec(), 7)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := NewPrefixGenerator(testPrefixSpec(), 7)
	if !reflect.DeepEqual(g1.Prefixes(), g2.Prefixes()) {
		t.Fatal("same seed produced different prefix populations")
	}
	if !reflect.DeepEqual(g1.Batch(100), g2.Batch(100)) {
		t.Fatal("same seed produced different request streams")
	}
	g3, _ := NewPrefixGenerator(testPrefixSpec(), 8)
	if reflect.DeepEqual(g1.Batch(100), g3.Batch(100)) {
		t.Fatal("different seeds produced identical request streams")
	}
}

func TestPrefixGeneratorShape(t *testing.T) {
	spec := testPrefixSpec()
	g, err := NewPrefixGenerator(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	prefixes := g.Prefixes()
	for _, r := range g.Batch(500) {
		if r.OutputLen != spec.OutputTokens {
			t.Fatalf("request %d: output %d, want fixed %d", r.ID, r.OutputLen, spec.OutputTokens)
		}
		if r.InputLen != len(r.Prompt) {
			t.Fatalf("request %d: InputLen %d but %d prompt tokens", r.ID, r.InputLen, len(r.Prompt))
		}
		sl := len(r.Prompt) - spec.PrefixTokens
		if sl < spec.MinSuffix || sl > spec.MaxSuffix {
			t.Fatalf("request %d: suffix %d outside [%d, %d]", r.ID, sl, spec.MinSuffix, spec.MaxSuffix)
		}
		matched := false
		for _, p := range prefixes {
			if reflect.DeepEqual(r.Prompt[:spec.PrefixTokens], p) {
				matched = true
				break
			}
		}
		if !matched {
			t.Fatalf("request %d's prompt starts with no known prefix", r.ID)
		}
		for i, tok := range r.Prompt {
			if tok < 0 || tok >= spec.Vocab {
				t.Fatalf("request %d token %d (%d) outside vocab", r.ID, i, tok)
			}
		}
	}
}

// TestPrefixGeneratorSkew: with positive skew the lowest-index prefix
// must dominate and popularity must fall with rank; with zero skew the
// draw is near-uniform.
func TestPrefixGeneratorSkew(t *testing.T) {
	count := func(skew float64) []int {
		spec := testPrefixSpec()
		spec.Skew = skew
		g, err := NewPrefixGenerator(spec, 11)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, spec.Prefixes)
		for _, r := range g.Batch(4000) {
			for i, p := range g.Prefixes() {
				if reflect.DeepEqual(r.Prompt[:spec.PrefixTokens], p) {
					counts[i]++
					break
				}
			}
		}
		return counts
	}
	skewed := count(1.2)
	for i := 1; i < len(skewed); i++ {
		if skewed[i] >= skewed[0] {
			t.Fatalf("skew 1.2: prefix %d drawn %d times ≥ head's %d", i, skewed[i], skewed[0])
		}
	}
	// With s=1.2 and 4 prefixes the head holds ~44% of the mass.
	if skewed[0] < 4000*35/100 {
		t.Fatalf("skew 1.2: head drawn %d of 4000, want ≥ 35%%", skewed[0])
	}
	uniform := count(0)
	for i, c := range uniform {
		if c < 4000/8 || c > 4000*3/8 {
			t.Fatalf("skew 0: prefix %d drawn %d of 4000 — not near-uniform", i, c)
		}
	}
}

func TestPrefixSpecValidation(t *testing.T) {
	cases := []func(*PrefixSpec){
		func(s *PrefixSpec) { s.Prefixes = 0 },
		func(s *PrefixSpec) { s.PrefixTokens = 0 },
		func(s *PrefixSpec) { s.Vocab = 1 },
		func(s *PrefixSpec) { s.MinSuffix = 0 },
		func(s *PrefixSpec) { s.MaxSuffix = 2; s.MinSuffix = 3 },
		func(s *PrefixSpec) { s.Skew = -1 },
		func(s *PrefixSpec) { s.OutputTokens = -1 },
	}
	for i, mutate := range cases {
		spec := testPrefixSpec()
		mutate(&spec)
		if _, err := NewPrefixGenerator(spec, 1); err == nil {
			t.Errorf("case %d: bad spec %+v accepted", i, spec)
		}
	}
	// A zero OutputTokens defaults rather than failing.
	spec := testPrefixSpec()
	spec.OutputTokens = 0
	g, err := NewPrefixGenerator(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r := g.Next(); r.OutputLen != 8 {
		t.Fatalf("default output %d, want 8", r.OutputLen)
	}
}
