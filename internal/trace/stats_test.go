package trace

import (
	"math"
	"reflect"
	"testing"

	"github.com/lia-sim/lia/internal/units"
)

// Satellite statistical property suite: every generator the scenario
// lab feeds from must match its analytic distribution within tolerance
// over 10k fixed-seed draws. Tolerances are ≥5 standard errors of the
// estimator, so a correct sampler cannot flake while a systematic bias
// (an off-by-one in the inverse CDF, a truncated tail, a mis-normalized
// CDF) lands far outside the band.

// TestGeometricSamplingMoments: output lengths are geometric with
// E = mean and Var = (1−p)/p², p = 1/mean — per family, per seed.
func TestGeometricSamplingMoments(t *testing.T) {
	const n = 10000
	for _, tc := range []struct {
		name string
		kind Kind
		seed int64
	}{
		{"code-seed1", Code, 1},
		{"code-seed42", Code, 42},
		{"conversation-seed1", Conversation, 1},
		{"conversation-seed42", Conversation, 42},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g, err := NewGenerator(tc.kind, 32, 512, tc.seed)
			if err != nil {
				t.Fatal(err)
			}
			var sum, sq float64
			for _, r := range g.Batch(n) {
				x := float64(r.OutputLen)
				sum += x
				sq += x * x
			}
			mean := sum / n
			variance := sq/n - mean*mean

			m := float64(tc.kind.MeanOutput())
			p := 1 / m
			wantVar := (1 - p) / (p * p)
			// Std error of the mean is m·√(1−p)/√n ≈ 1% of m; ±5% ≥ 5σ.
			if math.Abs(mean-m) > 0.05*m {
				t.Errorf("sample mean %.2f, want %.2f ±5%%", mean, m)
			}
			// The variance estimator's relative std error is ~2.8%
			// (geometric excess kurtosis ≈ 6); ±15% ≥ 5σ.
			if math.Abs(variance-wantVar) > 0.15*wantVar {
				t.Errorf("sample variance %.1f, want %.1f ±15%%", variance, wantVar)
			}
		})
	}
}

// TestHotPrefixHitRate: the empirical share of each hot prefix must
// match its power-law weight (i+1)^−s / Σ — the hit-rate contract the
// prefix-cache scenarios assume when they predict reuse.
func TestHotPrefixHitRate(t *testing.T) {
	const n = 10000
	for _, tc := range []struct {
		name string
		skew float64
		seed int64
	}{
		{"uniform", 0, 7},
		{"mild-skew", 0.8, 7},
		{"serving-skew", 1.2, 7},
		{"serving-skew-reseeded", 1.2, 99},
	} {
		t.Run(tc.name, func(t *testing.T) {
			spec := PrefixSpec{
				Prefixes: 6, PrefixTokens: 12, Skew: tc.skew,
				Vocab: 512, MinSuffix: 2, MaxSuffix: 6,
			}
			g, err := NewPrefixGenerator(spec, tc.seed)
			if err != nil {
				t.Fatal(err)
			}
			// Count by matching the materialized prefix population.
			counts := make([]int, spec.Prefixes)
			for _, r := range g.Batch(n) {
				for i, p := range g.Prefixes() {
					if reflect.DeepEqual(r.Prompt[:spec.PrefixTokens], p) {
						counts[i]++
						break
					}
				}
			}
			var total float64
			weights := make([]float64, spec.Prefixes)
			for i := range weights {
				weights[i] = math.Pow(float64(i+1), -tc.skew)
				total += weights[i]
			}
			var seen int
			for i, c := range counts {
				seen += c
				want := weights[i] / total
				got := float64(c) / n
				// Binomial std error ≤ 0.5/√n = 0.005; ±0.025 = 5σ.
				if math.Abs(got-want) > 0.025 {
					t.Errorf("prefix %d hit rate %.3f, want %.3f ±0.025", i, got, want)
				}
			}
			if seen != n {
				t.Fatalf("only %d of %d prompts matched a known prefix", seen, n)
			}
		})
	}
}

// TestLowEntropyDraftAcceptanceBias: a draft that always predicts
// "repeat the predecessor" — the degenerate cheapest draft — must be
// right with probability r + (1−r)/H on a LowEntropy stream (repeat
// chosen, or a fresh hot draw landing on the same token). This is the
// acceptance bias the speculative-decoding scenarios lean on: higher
// RepeatProb must yield measurably higher acceptance.
func TestLowEntropyDraftAcceptanceBias(t *testing.T) {
	const want = 10000 // adjacent-token transitions to observe
	measure := func(repeat float64, seed int64) float64 {
		spec := LowEntropySpec{
			Vocab: 64, HotTokens: 4, RepeatProb: repeat,
			MinLen: 16, MaxLen: 48,
		}
		g, err := NewLowEntropyGenerator(spec, seed)
		if err != nil {
			t.Fatal(err)
		}
		hits, seen := 0, 0
		for seen < want {
			p := g.Next().Prompt
			for i := 1; i < len(p); i++ {
				if p[i] == p[i-1] {
					hits++
				}
				seen++
			}
		}
		return float64(hits) / float64(seen)
	}
	prev := -1.0
	for _, tc := range []struct {
		name   string
		repeat float64
		seed   int64
	}{
		{"no-repeat", 0, 5},
		{"half", 0.5, 5},
		{"draft-friendly", 0.8, 5},
		{"draft-friendly-reseeded", 0.8, 77},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := measure(tc.repeat, tc.seed)
			const hot = 4
			analytic := tc.repeat + (1-tc.repeat)/hot
			// Bernoulli std error ≤ 0.5/√10000 = 0.005; ±0.025 = 5σ.
			if math.Abs(got-analytic) > 0.025 {
				t.Errorf("repeat-draft acceptance %.3f, want %.3f ±0.025", got, analytic)
			}
			if tc.seed == 5 {
				if got <= prev {
					t.Errorf("acceptance %.3f did not rise with RepeatProb (prev %.3f)", got, prev)
				}
				prev = got
			}
		})
	}
}

// TestArrivalProcessStatistics: each arrival process must hold the
// long-run mean rate while showing its signature clustering — unit
// squared-CV for Poisson, heavy clustering for bursts, phase-dependent
// intensity for diurnal.
func TestArrivalProcessStatistics(t *testing.T) {
	const n = 10000
	gaps := func(sched []units.Seconds) (mean, cv2 float64) {
		var sum, sq float64
		prev := units.Seconds(0)
		for _, a := range sched {
			d := float64(a - prev)
			prev = a
			sum += d
			sq += d * d
		}
		mean = sum / float64(len(sched))
		cv2 = (sq/float64(len(sched)) - mean*mean) / (mean * mean)
		return
	}

	t.Run("poisson", func(t *testing.T) {
		g, err := NewArrivalGen(ArrivalSpec{Process: Poisson, Rate: 50}, 3)
		if err != nil {
			t.Fatal(err)
		}
		mean, cv2 := gaps(g.Schedule(n))
		if math.Abs(mean-0.02) > 0.05*0.02 {
			t.Errorf("mean gap %.5fs, want 0.02 ±5%%", mean)
		}
		// Exponential gaps: CV² = 1.
		if cv2 < 0.85 || cv2 > 1.15 {
			t.Errorf("poisson CV² %.3f, want ≈1", cv2)
		}
	})

	t.Run("bursty", func(t *testing.T) {
		spec := ArrivalSpec{Process: Bursty, Rate: 50, BurstMean: 8, BurstGap: 0.0001}
		g, err := NewArrivalGen(spec, 3)
		if err != nil {
			t.Fatal(err)
		}
		sched := g.Schedule(n)
		mean, cv2 := gaps(sched)
		// Long-run rate is preserved: epochs at Rate/BurstMean carrying
		// BurstMean requests each. ±10% (burst sizes add variance).
		if math.Abs(mean-0.02) > 0.10*0.02 {
			t.Errorf("bursty mean gap %.5fs, want 0.02 ±10%%", mean)
		}
		// Clustering: most gaps are the tiny intra-burst spacing, a few
		// are long epoch gaps — squared CV far above Poisson's 1.
		if cv2 < 2 {
			t.Errorf("bursty CV² %.3f, want ≥2 (clustered)", cv2)
		}
	})

	t.Run("diurnal", func(t *testing.T) {
		spec := ArrivalSpec{Process: Diurnal, Rate: 200, Period: 1, Depth: 0.8}
		g, err := NewArrivalGen(spec, 3)
		if err != nil {
			t.Fatal(err)
		}
		sched := g.Schedule(n) // ~50 full periods at 200/s
		mean, _ := gaps(sched)
		if math.Abs(mean-0.005) > 0.10*0.005 {
			t.Errorf("diurnal mean gap %.6fs, want 0.005 ±10%%", mean)
		}
		// Phase split: the positive-sine half carries (1+2D/π)/(1−2D/π)
		// ≈ 3.1× the arrivals of the negative half at D=0.8.
		var peak, trough int
		for _, a := range sched {
			if math.Sin(2*math.Pi*float64(a/spec.Period)) > 0 {
				peak++
			} else {
				trough++
			}
		}
		if ratio := float64(peak) / float64(trough); ratio < 2 {
			t.Errorf("peak/trough arrival ratio %.2f, want ≥2 at depth 0.8", ratio)
		}
	})

	t.Run("deterministic", func(t *testing.T) {
		for _, spec := range []ArrivalSpec{
			{Process: Poisson, Rate: 50},
			{Process: Bursty, Rate: 50, BurstMean: 8, BurstGap: 0.0001},
			{Process: Diurnal, Rate: 200, Period: 1, Depth: 0.8},
		} {
			a, err := NewArrivalGen(spec, 11)
			if err != nil {
				t.Fatal(err)
			}
			b, _ := NewArrivalGen(spec, 11)
			if !reflect.DeepEqual(a.Schedule(500), b.Schedule(500)) {
				t.Errorf("%s: same seed produced different schedules", spec.Process)
			}
			c, _ := NewArrivalGen(spec, 12)
			if reflect.DeepEqual(a.Schedule(500), c.Schedule(500)) {
				t.Errorf("%s: different seeds produced identical schedules", spec.Process)
			}
		}
	})

	t.Run("validation", func(t *testing.T) {
		for _, bad := range []ArrivalSpec{
			{Process: Poisson, Rate: 0},
			{Process: Poisson, Rate: math.Inf(1)},
			{Process: Bursty, Rate: 10, BurstMean: 0.5},
			{Process: Bursty, Rate: 10, BurstMean: 4, BurstGap: -1},
			{Process: Diurnal, Rate: 10, Period: 0, Depth: 0.5},
			{Process: Diurnal, Rate: 10, Period: 1, Depth: 1},
			{Process: ArrivalProcess(42), Rate: 10},
		} {
			if _, err := NewArrivalGen(bad, 1); err == nil {
				t.Errorf("spec %+v should be rejected", bad)
			}
		}
	})
}
