package trace

import (
	"math"
	"testing"
)

func TestGeneratorDeterministic(t *testing.T) {
	g1, err := NewGenerator(Code, 32, 2048, 7)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := NewGenerator(Code, 32, 2048, 7)
	for i := 0; i < 50; i++ {
		a, b := g1.Next(), g2.Next()
		if a != b {
			t.Fatalf("request %d diverged: %+v vs %+v", i, a, b)
		}
	}
}

func TestGeneratorRejectsBadRange(t *testing.T) {
	if _, err := NewGenerator(Code, 0, 10, 1); err == nil {
		t.Error("minIn=0 accepted")
	}
	if _, err := NewGenerator(Code, 100, 50, 1); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestInputLengthsUniformInRange(t *testing.T) {
	g, _ := NewGenerator(Conversation, 32, 2048, 1)
	reqs := g.Batch(4000)
	var sum int
	for _, r := range reqs {
		if r.InputLen < 32 || r.InputLen > 2048 {
			t.Fatalf("input length %d out of range", r.InputLen)
		}
		sum += r.InputLen
	}
	mean := float64(sum) / float64(len(reqs))
	// Uniform [32, 2048] has mean 1040; allow sampling noise.
	if mean < 980 || mean > 1100 {
		t.Errorf("mean input length = %v, want ≈1040", mean)
	}
}

func TestOutputLengthsMatchTraceFamily(t *testing.T) {
	for _, k := range []Kind{Code, Conversation} {
		g, _ := NewGenerator(k, 32, 2048, 5)
		reqs := g.Batch(4000)
		var sum int
		for _, r := range reqs {
			if r.OutputLen < 1 {
				t.Fatalf("non-positive output length")
			}
			sum += r.OutputLen
		}
		mean := float64(sum) / float64(len(reqs))
		want := float64(k.MeanOutput())
		// Closed-form sampling has E[X] = mean exactly; the geometric's
		// std ≈ mean, so over 4000 samples the sample mean sits within
		// ±6% (≈4 standard errors) — much tighter than the ±15% the old
		// truncated Bernoulli loop needed.
		if mean < 0.94*want || mean > 1.06*want {
			t.Errorf("%s mean output = %v, want ≈%v", k, mean, want)
		}
	}
}

// TestOutputLengthsGeometricMoments checks the inverse-CDF sampler
// against the geometric family's first two moments: mean 1/p and
// standard deviation √(1−p)/p, over a large sample so the tolerances
// stay several standard errors wide.
func TestOutputLengthsGeometricMoments(t *testing.T) {
	for _, k := range []Kind{Code, Conversation} {
		g, _ := NewGenerator(k, 32, 2048, 11)
		const n = 20000
		reqs := g.Batch(n)
		var sum float64
		for _, r := range reqs {
			sum += float64(r.OutputLen)
		}
		mean := sum / n
		var ss float64
		for _, r := range reqs {
			d := float64(r.OutputLen) - mean
			ss += d * d
		}
		std := math.Sqrt(ss / n)

		m := float64(k.MeanOutput())
		p := 1 / m
		wantStd := math.Sqrt(1-p) / p
		if mean < 0.97*m || mean > 1.03*m {
			t.Errorf("%s sample mean %.2f, want %.2f ±3%%", k, mean, m)
		}
		if std < 0.90*wantStd || std > 1.10*wantStd {
			t.Errorf("%s sample std %.2f, want %.2f ±10%%", k, std, wantStd)
		}
		// The untruncated tail must actually be exercised: with 20000
		// draws, P(max ≤ 4×mean) = (1−e⁻⁴)^20000 ≈ e⁻³⁶⁶ — the old
		// 8×mean cutoff made long generations impossible, this sampler
		// must not.
		var maxOut int
		for _, r := range reqs {
			if r.OutputLen > maxOut {
				maxOut = r.OutputLen
			}
		}
		if maxOut <= 4*k.MeanOutput() {
			t.Errorf("%s max output %d never exceeded 4×mean — tail looks truncated", k, maxOut)
		}
	}
}

func TestWorkloadValidate(t *testing.T) {
	if err := (Workload{Batch: 1, InputLen: 32, OutputLen: 32}).Validate(); err != nil {
		t.Error(err)
	}
	if err := (Workload{Batch: 0, InputLen: 32, OutputLen: 32}).Validate(); err == nil {
		t.Error("zero batch accepted")
	}
	w := Workload{Batch: 64, InputLen: 256, OutputLen: 32}
	if w.TotalTokens() != 64*32 {
		t.Error("TotalTokens wrong")
	}
	if w.String() != "B=64 Lin=256 Lout=32" {
		t.Errorf("String = %q", w.String())
	}
}

func TestRepresentativeInputs(t *testing.T) {
	// §7: L_max is 2016 for L_out=32 and 1792 for L_out=256.
	got := RepresentativeInputs(2048, 32)
	if got[len(got)-1] != 2016 {
		t.Errorf("L_out=32 grid ends at %d, want 2016", got[len(got)-1])
	}
	got = RepresentativeInputs(2048, 256)
	if got[len(got)-1] != 1792 {
		t.Errorf("L_out=256 grid ends at %d, want 1792", got[len(got)-1])
	}
	if got[0] != 32 {
		t.Errorf("grid starts at %d, want 32", got[0])
	}
	// A tiny model cuts the grid down.
	got = RepresentativeInputs(300, 32)
	for _, l := range got {
		if l > 268 {
			t.Errorf("grid value %d exceeds max", l)
		}
	}
}

func TestAverageRequest(t *testing.T) {
	reqs := []Request{{InputLen: 100, OutputLen: 10}, {InputLen: 300, OutputLen: 30}}
	w, err := AverageRequest(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if w.Batch != 2 || w.InputLen != 200 || w.OutputLen != 20 {
		t.Errorf("AverageRequest = %+v", w)
	}
	if _, err := AverageRequest(nil); err == nil {
		t.Error("empty slice accepted")
	}
}
