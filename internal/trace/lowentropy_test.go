package trace

import (
	"testing"
)

func lowEntropySpec() LowEntropySpec {
	return LowEntropySpec{
		Vocab:      64,
		HotTokens:  4,
		RepeatProb: 0.8,
		MinLen:     12,
		MaxLen:     48,
	}
}

func TestLowEntropyDeterministicAndBounded(t *testing.T) {
	spec := lowEntropySpec()
	a, err := NewLowEntropyGenerator(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewLowEntropyGenerator(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	hot := map[int]bool{}
	for _, tok := range a.HotTokens() {
		if tok < 0 || tok >= spec.Vocab {
			t.Fatalf("hot token %d outside vocab [0,%d)", tok, spec.Vocab)
		}
		if hot[tok] {
			t.Fatalf("hot token %d sampled twice", tok)
		}
		hot[tok] = true
	}
	for i := 0; i < 50; i++ {
		ra, rb := a.Next(), b.Next()
		if ra.ID != rb.ID || ra.InputLen != rb.InputLen || ra.OutputLen != rb.OutputLen {
			t.Fatalf("request %d: streams diverged: %+v vs %+v", i, ra.Request, rb.Request)
		}
		if len(ra.Prompt) != len(rb.Prompt) {
			t.Fatalf("request %d: prompt lengths diverged", i)
		}
		if len(ra.Prompt) < spec.MinLen || len(ra.Prompt) > spec.MaxLen {
			t.Fatalf("request %d: prompt length %d outside [%d,%d]", i, len(ra.Prompt), spec.MinLen, spec.MaxLen)
		}
		if ra.OutputLen != 8 {
			t.Fatalf("request %d: default output %d, want 8", i, ra.OutputLen)
		}
		for j := range ra.Prompt {
			if ra.Prompt[j] != rb.Prompt[j] {
				t.Fatalf("request %d: prompts diverged at %d", i, j)
			}
			if !hot[ra.Prompt[j]] {
				t.Fatalf("request %d: token %d not in the hot set", i, ra.Prompt[j])
			}
		}
	}
}

// TestLowEntropyIsLowEntropy: the mode's whole point — its pooled token
// stream carries measurably less entropy than uniform draws over the
// same vocabulary, and the knobs move it in the right direction.
func TestLowEntropyIsLowEntropy(t *testing.T) {
	const reqs = 200
	sample := func(spec LowEntropySpec) float64 {
		g, err := NewLowEntropyGenerator(spec, 11)
		if err != nil {
			t.Fatal(err)
		}
		var prompts [][]int
		for _, r := range g.Batch(reqs) {
			prompts = append(prompts, r.Prompt)
		}
		return EmpiricalEntropy(prompts)
	}

	low := sample(lowEntropySpec())

	flat := lowEntropySpec()
	flat.HotTokens = flat.Vocab
	flat.RepeatProb = 0
	high := sample(flat)

	// Uniform over 64 tokens is 6 bits; the hot-4 repeat-heavy stream
	// cannot exceed 2 bits (4 symbols) and repetition pushes it lower.
	if low >= 2 {
		t.Fatalf("low-entropy stream measured %.2f bits, want <2", low)
	}
	if high <= 5 {
		t.Fatalf("uniform stream measured %.2f bits, want >5", high)
	}
	if low >= high {
		t.Fatalf("low-entropy %.2f bits not below uniform %.2f bits", low, high)
	}

	// More repetition ⇒ less entropy, hot set fixed.
	sticky := lowEntropySpec()
	sticky.RepeatProb = 0.95
	if got := sample(sticky); got >= low {
		t.Errorf("RepeatProb 0.95 measured %.2f bits, want below %.2f", got, low)
	}
}

func TestLowEntropyValidation(t *testing.T) {
	bad := []LowEntropySpec{
		{Vocab: 1, HotTokens: 1, RepeatProb: 0.5, MinLen: 1, MaxLen: 2},
		{Vocab: 64, HotTokens: 0, RepeatProb: 0.5, MinLen: 1, MaxLen: 2},
		{Vocab: 64, HotTokens: 65, RepeatProb: 0.5, MinLen: 1, MaxLen: 2},
		{Vocab: 64, HotTokens: 4, RepeatProb: -0.1, MinLen: 1, MaxLen: 2},
		{Vocab: 64, HotTokens: 4, RepeatProb: 1.1, MinLen: 1, MaxLen: 2},
		{Vocab: 64, HotTokens: 4, RepeatProb: 0.5, MinLen: 0, MaxLen: 2},
		{Vocab: 64, HotTokens: 4, RepeatProb: 0.5, MinLen: 3, MaxLen: 2},
		{Vocab: 64, HotTokens: 4, RepeatProb: 0.5, MinLen: 1, MaxLen: 2, OutputTokens: -1},
	}
	for i, spec := range bad {
		if _, err := NewLowEntropyGenerator(spec, 1); err == nil {
			t.Errorf("spec %d (%+v) accepted, want error", i, spec)
		}
	}
}
