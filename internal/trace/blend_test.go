package trace

import (
	"math"
	"testing"
)

// The statistical contract for blended streams: over a large sample the
// family mix matches the ratio within binomial noise, each family's
// conditional output mean matches its trace, and the overall mean
// matches the ratio-weighted mixture. Deterministic seed, so the bounds
// are tight without flaking.
func TestBlendGeneratorStatistics(t *testing.T) {
	const (
		n     = 10000
		ratio = 0.5
	)
	g, err := NewBlendGenerator(ratio, 32, 512, 7)
	if err != nil {
		t.Fatal(err)
	}
	var codeN, convN int
	var codeOut, convOut float64
	for i := 0; i < n; i++ {
		r := g.Next()
		if r.InputLen < 32 || r.InputLen > 512 {
			t.Fatalf("input length %d outside [32, 512]", r.InputLen)
		}
		if r.OutputLen < 1 {
			t.Fatalf("output length %d < 1", r.OutputLen)
		}
		switch r.Kind {
		case Code:
			codeN++
			codeOut += float64(r.OutputLen)
		case Conversation:
			convN++
			convOut += float64(r.OutputLen)
		default:
			t.Fatalf("unknown kind %v", r.Kind)
		}
	}
	// Family mix: 3σ binomial bound around the ratio.
	frac := float64(codeN) / n
	sigma := math.Sqrt(ratio * (1 - ratio) / n)
	if math.Abs(frac-ratio) > 3*sigma {
		t.Errorf("code fraction %.4f outside %.2f ± %.4f", frac, ratio, 3*sigma)
	}
	// Conditional means: geometric sd ≈ mean, so a 4·mean/√n bound.
	codeMean := codeOut / float64(codeN)
	if math.Abs(codeMean-32) > 4*32/math.Sqrt(float64(codeN)) {
		t.Errorf("code output mean %.2f, want ≈32", codeMean)
	}
	convMean := convOut / float64(convN)
	if math.Abs(convMean-256) > 4*256/math.Sqrt(float64(convN)) {
		t.Errorf("conversation output mean %.2f, want ≈256", convMean)
	}
	// Blended mean: mixture sd ≈ 214 at ratio 0.5, so 4σ/√n ≈ 8.6.
	blended := (codeOut + convOut) / n
	want := BlendMeanOutput(ratio)
	sd := math.Sqrt(ratio*(32*32) + (1-ratio)*(256*256) + ratio*(1-ratio)*(256-32)*(256-32))
	if math.Abs(blended-want) > 4*sd/math.Sqrt(n) {
		t.Errorf("blended output mean %.2f, want ≈%.1f", blended, want)
	}
}

// Determinism and edge ratios: the same seed replays the same stream,
// and ratios 0 / 1 degenerate to the pure families.
func TestBlendGeneratorDeterminismAndEdges(t *testing.T) {
	a, _ := NewBlendGenerator(0.3, 32, 128, 42)
	b, _ := NewBlendGenerator(0.3, 32, 128, 42)
	for i := 0; i < 200; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	pure, _ := NewBlendGenerator(0, 32, 128, 1)
	for _, r := range pure.Batch(100) {
		if r.Kind != Conversation {
			t.Fatal("ratio 0 must be all conversation")
		}
	}
	all, _ := NewBlendGenerator(1, 32, 128, 1)
	for _, r := range all.Batch(100) {
		if r.Kind != Code {
			t.Fatal("ratio 1 must be all code")
		}
	}
	if _, err := NewBlendGenerator(1.5, 32, 128, 1); err == nil {
		t.Error("ratio >1 must be rejected")
	}
	if _, err := NewBlendGenerator(0.5, 0, 128, 1); err == nil {
		t.Error("minIn 0 must be rejected")
	}
}
