package trace

import (
	"fmt"
	"math"
	"math/rand"
)

// BlendGenerator interleaves two trace families into one arrival
// stream: each request is independently a Code draw with probability
// `ratio` and a Conversation draw otherwise — the mixed code/chat
// traffic a production front door actually sees, where short completion
// bursts share a queue with long chat generations. Like Generator it is
// deterministic per seed and NOT safe for concurrent use.
type BlendGenerator struct {
	rng      *rand.Rand
	ratio    float64
	minIn    int
	maxIn    int
	produced int
}

// NewBlendGenerator returns a generator mixing Code requests (with
// probability ratio ∈ [0, 1]) into a Conversation stream. Input lengths
// are uniform on [minIn, maxIn] for both families; output lengths are
// geometric with each family's own mean, so the blended output-length
// distribution is the ratio-weighted mixture.
func NewBlendGenerator(ratio float64, minIn, maxIn int, seed int64) (*BlendGenerator, error) {
	if ratio < 0 || ratio > 1 {
		return nil, fmt.Errorf("trace: blend ratio %g outside [0, 1]", ratio)
	}
	if minIn < 1 || maxIn < minIn {
		return nil, fmt.Errorf("trace: invalid input-length range [%d, %d]", minIn, maxIn)
	}
	return &BlendGenerator{
		rng:   rand.New(rand.NewSource(seed)),
		ratio: ratio,
		minIn: minIn,
		maxIn: maxIn,
	}, nil
}

// Next returns the next request: one uniform draws the family, one the
// input length, one the geometric output length (the same closed-form
// inverse-CDF sampling Generator.Next uses) — exactly three variates
// per request, so per-seed streams stay deterministic.
func (g *BlendGenerator) Next() Request {
	g.produced++
	kind := Conversation
	if g.rng.Float64() < g.ratio {
		kind = Code
	}
	in := g.minIn + g.rng.Intn(g.maxIn-g.minIn+1)
	p := 1 / float64(kind.MeanOutput())
	u := g.rng.Float64()
	out := 1 + int(math.Log(1-u)/math.Log(1-p))
	return Request{ID: g.produced, InputLen: in, OutputLen: out, Kind: kind}
}

// Batch draws n requests.
func (g *BlendGenerator) Batch(n int) []Request {
	out := make([]Request, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// BlendMeanOutput returns the blended stream's expected output length:
// the ratio-weighted mixture of the family means.
func BlendMeanOutput(ratio float64) float64 {
	return ratio*float64(Code.MeanOutput()) + (1-ratio)*float64(Conversation.MeanOutput())
}
