package trace

import (
	"fmt"
	"math"
	"math/rand"
)

// LowEntropySpec shapes a draft-friendly workload: prompts whose token
// streams are highly predictable — a small hot vocabulary plus frequent
// immediate repetition — so a cheap draft model agrees with the target
// often and speculative decoding sees realistic (high) acceptance rates.
// Real low-entropy traffic looks like this too: templated code, log
// lines, and boilerplate-heavy chat all reuse a narrow token set.
type LowEntropySpec struct {
	// Vocab bounds token ids to [0, Vocab).
	Vocab int
	// HotTokens is the size of the hot subset the stream draws from
	// (1 ≤ HotTokens ≤ Vocab). Smaller ⇒ lower entropy.
	HotTokens int
	// RepeatProb is the probability each token repeats its predecessor
	// instead of drawing fresh from the hot set. Higher ⇒ lower entropy.
	RepeatProb float64
	// MinLen and MaxLen bound the prompt length (uniform draw, 1 ≤ min ≤ max).
	MinLen, MaxLen int
	// OutputTokens is the fixed generation length per request (default 8).
	OutputTokens int
}

func (s LowEntropySpec) withDefaults() LowEntropySpec {
	if s.OutputTokens == 0 {
		s.OutputTokens = 8
	}
	return s
}

func (s LowEntropySpec) validate() error {
	if s.Vocab < 2 {
		return fmt.Errorf("trace: vocabulary %d too small", s.Vocab)
	}
	if s.HotTokens < 1 || s.HotTokens > s.Vocab {
		return fmt.Errorf("trace: hot set %d outside [1, %d]", s.HotTokens, s.Vocab)
	}
	if s.RepeatProb < 0 || s.RepeatProb > 1 {
		return fmt.Errorf("trace: repeat probability %g outside [0,1]", s.RepeatProb)
	}
	if s.MinLen < 1 || s.MaxLen < s.MinLen {
		return fmt.Errorf("trace: invalid prompt-length range [%d, %d]", s.MinLen, s.MaxLen)
	}
	if s.OutputTokens < 1 {
		return fmt.Errorf("trace: OutputTokens must be ≥1, got %d", s.OutputTokens)
	}
	return nil
}

// LowEntropyGenerator produces a deterministic draft-friendly request
// stream. Like Generator it is NOT safe for concurrent use — give each
// goroutine its own instance.
type LowEntropyGenerator struct {
	rng      *rand.Rand
	spec     LowEntropySpec
	hot      []int
	produced int
}

// NewLowEntropyGenerator materializes the hot token subset from the
// seed; the same (spec, seed) pair always yields the same stream.
func NewLowEntropyGenerator(spec LowEntropySpec, seed int64) (*LowEntropyGenerator, error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	g := &LowEntropyGenerator{rng: rng, spec: spec}
	// Sample the hot subset without replacement from [0, Vocab) so hot
	// ids are spread across the vocabulary rather than packed at 0.
	perm := rng.Perm(spec.Vocab)
	g.hot = append(g.hot, perm[:spec.HotTokens]...)
	return g, nil
}

// HotTokens returns the hot subset (callers must not mutate).
func (g *LowEntropyGenerator) HotTokens() []int { return g.hot }

// Next draws one request: a uniform prompt length, then a token stream
// where each position either repeats its predecessor (RepeatProb) or
// draws fresh from the hot subset — a two-state chain whose entropy the
// spec controls directly.
func (g *LowEntropyGenerator) Next() PromptRequest {
	g.produced++
	n := g.spec.MinLen + g.rng.Intn(g.spec.MaxLen-g.spec.MinLen+1)
	prompt := make([]int, n)
	prompt[0] = g.hot[g.rng.Intn(len(g.hot))]
	for i := 1; i < n; i++ {
		if g.rng.Float64() < g.spec.RepeatProb {
			prompt[i] = prompt[i-1]
		} else {
			prompt[i] = g.hot[g.rng.Intn(len(g.hot))]
		}
	}
	return PromptRequest{
		Request: Request{ID: g.produced, InputLen: n, OutputLen: g.spec.OutputTokens},
		Prompt:  prompt,
	}
}

// Batch draws n requests.
func (g *LowEntropyGenerator) Batch(n int) []PromptRequest {
	out := make([]PromptRequest, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// EmpiricalEntropy returns the order-0 Shannon entropy (bits per token)
// of the pooled prompt token stream — the knob the spec-decode benches
// report alongside acceptance rate.
func EmpiricalEntropy(prompts [][]int) float64 {
	counts := map[int]int{}
	total := 0
	for _, p := range prompts {
		for _, t := range p {
			counts[t]++
			total++
		}
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}
