package trace

import "testing"

// FuzzTraceGenerator hunts for parameter corners where the generator
// either accepts a degenerate range or emits a request outside its
// contract: inputs must land in [minIn, maxIn] and outputs must be ≥1
// (the geometric draw's log-domain arithmetic must never round to zero
// or go negative, whatever the seed).
func FuzzTraceGenerator(f *testing.F) {
	f.Add(int8(0), 32, 2048, int64(1))
	f.Add(int8(1), 1, 1, int64(42))
	f.Add(int8(0), 1, 1<<20, int64(-7))
	f.Add(int8(1), 100, 99, int64(0)) // invalid: max < min
	f.Add(int8(0), 0, 10, int64(3))   // invalid: min < 1
	f.Fuzz(func(t *testing.T, kindRaw int8, minIn, maxIn int, seed int64) {
		kind := Code
		if kindRaw%2 != 0 {
			kind = Conversation
		}
		// Keep the range arithmetic away from int overflow; the generator's
		// contract is about distribution shape, not 2^62-token prompts.
		if minIn > 1<<30 || maxIn > 1<<30 || minIn < -(1<<30) || maxIn < -(1<<30) {
			t.Skip()
		}
		gen, err := NewGenerator(kind, minIn, maxIn, seed)
		if minIn < 1 || maxIn < minIn {
			if err == nil {
				t.Fatalf("invalid range [%d, %d] accepted", minIn, maxIn)
			}
			return
		}
		if err != nil {
			t.Fatalf("valid range [%d, %d] rejected: %v", minIn, maxIn, err)
		}
		for i := 0; i < 64; i++ {
			r := gen.Next()
			if r.InputLen < minIn || r.InputLen > maxIn {
				t.Fatalf("draw %d: input %d outside [%d, %d]", i, r.InputLen, minIn, maxIn)
			}
			if r.OutputLen < 1 {
				t.Fatalf("draw %d: output %d must be ≥1", i, r.OutputLen)
			}
			if r.ID != i+1 {
				t.Fatalf("draw %d: ID %d, want %d", i, r.ID, i+1)
			}
		}
	})
}
