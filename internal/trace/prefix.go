package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// PromptRequest is a Request with concrete prompt tokens — what the
// prefix-cache benchmark needs, since prefix reuse is about content, not
// just lengths.
type PromptRequest struct {
	Request
	// Prompt is the tokenized prompt: one of the workload's hot prefixes
	// followed by a request-unique suffix.
	Prompt []int
}

// PrefixSpec shapes a hot-prefix workload: a small population of shared
// prompt prefixes (system prompts, few-shot preambles, document
// contexts) continued by per-request suffixes, with the prefix
// popularity following a power law.
type PrefixSpec struct {
	// Prefixes is the number of distinct hot prefixes (≥1).
	Prefixes int
	// PrefixTokens is each prefix's length in tokens (≥1).
	PrefixTokens int
	// Skew is the popularity exponent s: prefix i is drawn with
	// probability ∝ (i+1)^−s. 0 is uniform; ~1.2 matches the skewed
	// reuse real serving traces show.
	Skew float64
	// Vocab bounds token ids to [0, Vocab).
	Vocab int
	// MinSuffix and MaxSuffix bound the unique suffix length (uniform
	// draw, 1 ≤ min ≤ max).
	MinSuffix, MaxSuffix int
	// OutputTokens is the fixed generation length per request (default 8).
	OutputTokens int
}

func (s PrefixSpec) withDefaults() PrefixSpec {
	if s.OutputTokens == 0 {
		s.OutputTokens = 8
	}
	return s
}

func (s PrefixSpec) validate() error {
	if s.Prefixes < 1 || s.PrefixTokens < 1 {
		return fmt.Errorf("trace: need ≥1 prefixes of ≥1 tokens, got %d × %d", s.Prefixes, s.PrefixTokens)
	}
	if s.Vocab < 2 {
		return fmt.Errorf("trace: vocabulary %d too small", s.Vocab)
	}
	if s.MinSuffix < 1 || s.MaxSuffix < s.MinSuffix {
		return fmt.Errorf("trace: invalid suffix range [%d, %d]", s.MinSuffix, s.MaxSuffix)
	}
	if s.Skew < 0 {
		return fmt.Errorf("trace: negative skew %g", s.Skew)
	}
	if s.OutputTokens < 1 {
		return fmt.Errorf("trace: OutputTokens must be ≥1, got %d", s.OutputTokens)
	}
	return nil
}

// PrefixGenerator produces a deterministic hot-prefix request stream.
// Like Generator it is NOT safe for concurrent use — give each goroutine
// its own instance.
type PrefixGenerator struct {
	rng      *rand.Rand
	spec     PrefixSpec
	prefixes [][]int
	cum      []float64 // cumulative popularity, cum[len-1] == 1
	produced int
}

// NewPrefixGenerator materializes the prefix population from the seed;
// the same (spec, seed) pair always yields the same prefixes and the
// same request stream.
func NewPrefixGenerator(spec PrefixSpec, seed int64) (*PrefixGenerator, error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	g := &PrefixGenerator{rng: rng, spec: spec}
	for i := 0; i < spec.Prefixes; i++ {
		p := make([]int, spec.PrefixTokens)
		for j := range p {
			p[j] = rng.Intn(spec.Vocab)
		}
		g.prefixes = append(g.prefixes, p)
	}
	// Precompute the power-law CDF so each selection costs one uniform
	// draw plus a binary search.
	g.cum = make([]float64, spec.Prefixes)
	total := 0.0
	for i := range g.cum {
		total += math.Pow(float64(i+1), -spec.Skew)
		g.cum[i] = total
	}
	for i := range g.cum {
		g.cum[i] /= total
	}
	return g, nil
}

// Prefixes returns the hot prefix population (callers must not mutate).
func (g *PrefixGenerator) Prefixes() [][]int { return g.prefixes }

// Next draws one request: a power-law prefix choice, a uniform suffix
// length, and suffix tokens — three independent uses of the stream, in a
// fixed order, so per-seed determinism holds.
func (g *PrefixGenerator) Next() PromptRequest {
	g.produced++
	u := g.rng.Float64()
	pi := sort.SearchFloat64s(g.cum, u)
	if pi >= len(g.prefixes) {
		pi = len(g.prefixes) - 1
	}
	sl := g.spec.MinSuffix + g.rng.Intn(g.spec.MaxSuffix-g.spec.MinSuffix+1)
	prompt := make([]int, 0, g.spec.PrefixTokens+sl)
	prompt = append(prompt, g.prefixes[pi]...)
	for i := 0; i < sl; i++ {
		prompt = append(prompt, g.rng.Intn(g.spec.Vocab))
	}
	return PromptRequest{
		Request: Request{ID: g.produced, InputLen: len(prompt), OutputLen: g.spec.OutputTokens},
		Prompt:  prompt,
	}
}

// Batch draws n requests.
func (g *PrefixGenerator) Batch(n int) []PromptRequest {
	out := make([]PromptRequest, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}
