package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"github.com/lia-sim/lia/internal/units"
)

func mustRun(t *testing.T, s *Schedule) Result {
	t.Helper()
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSerialTasksOnOneResource(t *testing.T) {
	s := NewSchedule()
	s.MustAdd(Task{ID: "a", Resource: "gpu", Duration: 1})
	s.MustAdd(Task{ID: "b", Resource: "gpu", Duration: 2})
	res := mustRun(t, s)
	if res.Makespan != 3 {
		t.Errorf("makespan = %v, want 3", res.Makespan)
	}
	if res.Start["b"] != 1 {
		t.Errorf("b starts at %v, want 1", res.Start["b"])
	}
	if u := res.Utilization("gpu"); math.Abs(u-1) > 1e-12 {
		t.Errorf("gpu utilization = %v, want 1", u)
	}
}

func TestParallelResourcesOverlap(t *testing.T) {
	s := NewSchedule()
	s.MustAdd(Task{ID: "xfer", Resource: "pcie", Duration: 5})
	s.MustAdd(Task{ID: "comp", Resource: "gpu", Duration: 5})
	res := mustRun(t, s)
	if res.Makespan != 5 {
		t.Errorf("independent tasks should overlap fully: makespan %v", res.Makespan)
	}
}

func TestDependencyGatesStart(t *testing.T) {
	s := NewSchedule()
	s.MustAdd(Task{ID: "load", Resource: "pcie", Duration: 2})
	s.MustAdd(Task{ID: "comp", Resource: "gpu", Duration: 3, Deps: []string{"load"}})
	res := mustRun(t, s)
	if res.Start["comp"] != 2 || res.Makespan != 5 {
		t.Errorf("start=%v makespan=%v, want 2 and 5", res.Start["comp"], res.Makespan)
	}
}

// TestPipelineOverlap models the Figure 7 pattern: weight transfers for
// layer i+1 overlap with layer i's compute.
func TestPipelineOverlap(t *testing.T) {
	s := NewSchedule()
	const layers = 4
	for i := 0; i < layers; i++ {
		xfer := Task{ID: id("xfer", i), Resource: "pcie", Duration: 2}
		if i > 0 {
			// transfers proceed back to back (FIFO on pcie)
		}
		s.MustAdd(xfer)
		comp := Task{ID: id("comp", i), Resource: "gpu", Duration: 2, Deps: []string{id("xfer", i)}}
		s.MustAdd(comp)
	}
	res := mustRun(t, s)
	// Perfect pipeline: first transfer (2) then 4 computes back to back
	// (8) = 10; without overlap it would be 16.
	if res.Makespan != 10 {
		t.Errorf("pipelined makespan = %v, want 10", res.Makespan)
	}
}

func id(kind string, i int) string {
	return kind + "-" + string(rune('0'+i))
}

func TestFIFOHeadOfLineBlocking(t *testing.T) {
	// b is queued behind a on the gpu; even though b has no deps it cannot
	// start before a's dependency resolves — stream semantics.
	s := NewSchedule()
	s.MustAdd(Task{ID: "slow-load", Resource: "pcie", Duration: 10})
	s.MustAdd(Task{ID: "a", Resource: "gpu", Duration: 1, Deps: []string{"slow-load"}})
	s.MustAdd(Task{ID: "b", Resource: "gpu", Duration: 1})
	res := mustRun(t, s)
	if res.Start["b"] != 11 {
		t.Errorf("b starts at %v, want 11 (behind blocked head)", res.Start["b"])
	}
}

func TestAddRejectsBadTasks(t *testing.T) {
	s := NewSchedule()
	if err := s.Add(Task{Resource: "gpu", Duration: 1}); err == nil {
		t.Error("empty ID accepted")
	}
	if err := s.Add(Task{ID: "x", Duration: 1}); err == nil {
		t.Error("empty resource accepted")
	}
	if err := s.Add(Task{ID: "x", Resource: "gpu", Duration: -1}); err == nil {
		t.Error("negative duration accepted")
	}
	s.MustAdd(Task{ID: "x", Resource: "gpu", Duration: 1})
	if err := s.Add(Task{ID: "x", Resource: "gpu", Duration: 1}); err == nil {
		t.Error("duplicate ID accepted")
	}
}

func TestRunDetectsUnknownDep(t *testing.T) {
	s := NewSchedule()
	s.MustAdd(Task{ID: "a", Resource: "gpu", Duration: 1, Deps: []string{"ghost"}})
	if _, err := s.Run(); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Errorf("expected unknown-dependency error, got %v", err)
	}
}

func TestRunDetectsCycle(t *testing.T) {
	s := NewSchedule()
	s.MustAdd(Task{ID: "a", Resource: "gpu", Duration: 1, Deps: []string{"b"}})
	s.MustAdd(Task{ID: "b", Resource: "cpu", Duration: 1, Deps: []string{"a"}})
	if _, err := s.Run(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("expected cycle error, got %v", err)
	}
}

func TestCrossResourceDependencyChain(t *testing.T) {
	// cpu → pcie → gpu chain with a concurrent independent cpu task.
	s := NewSchedule()
	s.MustAdd(Task{ID: "produce", Resource: "cpu", Duration: 3})
	s.MustAdd(Task{ID: "ship", Resource: "pcie", Duration: 2, Deps: []string{"produce"}})
	s.MustAdd(Task{ID: "consume", Resource: "gpu", Duration: 4, Deps: []string{"ship"}})
	s.MustAdd(Task{ID: "other", Resource: "cpu", Duration: 1})
	res := mustRun(t, s)
	if res.Makespan != 9 {
		t.Errorf("makespan = %v, want 9", res.Makespan)
	}
	if res.Busy["cpu"] != 4 {
		t.Errorf("cpu busy = %v, want 4", res.Busy["cpu"])
	}
}

func TestCriticalPath(t *testing.T) {
	s := NewSchedule()
	s.MustAdd(Task{ID: "load", Resource: "pcie", Duration: 2})
	s.MustAdd(Task{ID: "comp", Resource: "gpu", Duration: 3, Deps: []string{"load"}})
	res := mustRun(t, s)
	path := s.CriticalPath(res)
	if len(path) != 2 || path[0] != "load" || path[1] != "comp" {
		t.Errorf("critical path = %v, want [load comp]", path)
	}
}

func TestZeroDurationTasks(t *testing.T) {
	s := NewSchedule()
	s.MustAdd(Task{ID: "a", Resource: "gpu", Duration: 0})
	s.MustAdd(Task{ID: "b", Resource: "gpu", Duration: 0, Deps: []string{"a"}})
	res := mustRun(t, s)
	if res.Makespan != 0 {
		t.Errorf("makespan = %v, want 0", res.Makespan)
	}
	if s.CriticalPath(res) == nil {
		t.Error("critical path should terminate for zero-duration chains")
	}
}

func TestUtilizationOnEmptyResult(t *testing.T) {
	var r Result
	if r.Utilization("gpu") != 0 {
		t.Error("empty result utilization should be 0")
	}
}

func TestDeterministicReplay(t *testing.T) {
	build := func() *Schedule {
		s := NewSchedule()
		for i := 0; i < 20; i++ {
			s.MustAdd(Task{ID: id("t", i), Resource: []string{"cpu", "gpu", "pcie"}[i%3], Duration: units.Seconds(i%5) + 1})
			if i > 2 {
				// create cross-resource deps
				s.tasks[len(s.tasks)-1].Deps = []string{id("t", i-3)}
			}
		}
		return s
	}
	r1 := mustRun(t, build())
	r2 := mustRun(t, build())
	if r1.Makespan != r2.Makespan {
		t.Error("runs are not deterministic")
	}
	for k, v := range r1.Start {
		if r2.Start[k] != v {
			t.Errorf("task %s start differs", k)
		}
	}
}

// TestRandomDAGInvariants fuzzes random schedules and checks the
// structural invariants every valid execution must satisfy: the makespan
// is at least the busiest resource's total and at most the serial sum;
// every task starts after its dependencies; resources never overlap two
// tasks.
func TestRandomDAGInvariants(t *testing.T) {
	resources := []string{"cpu", "gpu", "pcie"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSchedule()
		n := 5 + rng.Intn(40)
		ids := make([]string, n)
		for i := 0; i < n; i++ {
			ids[i] = fmt.Sprintf("t%d", i)
			task := Task{
				ID:       ids[i],
				Resource: resources[rng.Intn(len(resources))],
				Duration: units.Seconds(rng.Float64() * 3),
			}
			// Random back-edges keep the graph acyclic.
			for j := 0; j < i; j++ {
				if rng.Float64() < 0.15 {
					task.Deps = append(task.Deps, ids[j])
				}
			}
			s.MustAdd(task)
		}
		res, err := s.Run()
		if err != nil {
			return false
		}
		var serial units.Seconds
		for r, busy := range res.Busy {
			if busy > res.Makespan+1e-12 {
				t.Logf("resource %s busy %v > makespan %v", r, busy, res.Makespan)
				return false
			}
			serial += busy
		}
		if res.Makespan > serial+1e-12 {
			t.Logf("makespan %v > serial %v", res.Makespan, serial)
			return false
		}
		// Dependency ordering.
		for i := 0; i < n; i++ {
			task := s.tasks[i]
			for _, d := range task.Deps {
				if res.Start[task.ID] < res.Finish[d]-1e-12 {
					t.Logf("%s started before dep %s finished", task.ID, d)
					return false
				}
			}
		}
		// Per-resource non-overlap: sort by start and check intervals.
		byRes := map[string][]Task{}
		for _, task := range s.tasks {
			byRes[task.Resource] = append(byRes[task.Resource], task)
		}
		for _, tasks := range byRes {
			sort.Slice(tasks, func(a, b int) bool { return res.Start[tasks[a].ID] < res.Start[tasks[b].ID] })
			for i := 1; i < len(tasks); i++ {
				if res.Start[tasks[i].ID] < res.Finish[tasks[i-1].ID]-1e-12 {
					t.Logf("resource overlap between %s and %s", tasks[i-1].ID, tasks[i].ID)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
