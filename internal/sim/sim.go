// Package sim is a small deterministic scheduler for timing overlapped
// execution plans: tasks with durations, dependencies, and an assigned
// serial resource (a compute stream or a transfer link). Running a
// schedule answers "how long does this pipeline take end to end, and how
// busy was each resource?" — the question Optimization-2's overlapping
// (Figure 7) poses.
//
// Semantics: each resource executes its tasks one at a time in submission
// order (a FIFO stream, like a CUDA stream or a copy engine); a task
// starts when its resource is free AND all its dependencies have
// finished. Time is continuous (units.Seconds); execution is fully
// deterministic.
package sim

import (
	"fmt"
	"math"
	"sort"

	"github.com/lia-sim/lia/internal/units"
)

// Task is one unit of work bound to a resource.
type Task struct {
	// ID names the task uniquely within a schedule.
	ID string
	// Resource names the serial executor (e.g. "gpu", "cpu", "pcie").
	Resource string
	// Duration is the task's service time.
	Duration units.Seconds
	// Deps lists task IDs that must finish before this task starts.
	Deps []string
}

// Schedule is an ordered collection of tasks.
type Schedule struct {
	tasks []Task
	index map[string]int
}

// NewSchedule returns an empty schedule.
func NewSchedule() *Schedule {
	return &Schedule{index: make(map[string]int)}
}

// Add appends a task. Duplicate IDs, empty IDs/resources, and negative
// durations are rejected.
func (s *Schedule) Add(t Task) error {
	if t.ID == "" {
		return fmt.Errorf("sim: task with empty ID")
	}
	if t.Resource == "" {
		return fmt.Errorf("sim: task %s has no resource", t.ID)
	}
	if t.Duration < 0 || math.IsNaN(float64(t.Duration)) {
		return fmt.Errorf("sim: task %s has invalid duration %v", t.ID, t.Duration)
	}
	if _, dup := s.index[t.ID]; dup {
		return fmt.Errorf("sim: duplicate task ID %s", t.ID)
	}
	s.index[t.ID] = len(s.tasks)
	s.tasks = append(s.tasks, t)
	return nil
}

// MustAdd is Add for programmatically generated plans where an error is a
// bug in the plan builder.
func (s *Schedule) MustAdd(t Task) {
	if err := s.Add(t); err != nil {
		panic(err)
	}
}

// Len returns the number of tasks.
func (s *Schedule) Len() int { return len(s.tasks) }

// Result is the outcome of running a schedule.
type Result struct {
	// Makespan is the finish time of the last task.
	Makespan units.Seconds
	// Start and Finish give each task's executed interval.
	Start, Finish map[string]units.Seconds
	// Busy accumulates each resource's total service time.
	Busy map[string]units.Seconds
}

// Utilization returns a resource's busy fraction of the makespan.
func (r Result) Utilization(resource string) float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(r.Busy[resource]) / float64(r.Makespan)
}

// Run executes the schedule. It returns an error for unknown dependencies
// or dependency cycles.
func (s *Schedule) Run() (Result, error) {
	n := len(s.tasks)
	res := Result{
		Start:  make(map[string]units.Seconds, n),
		Finish: make(map[string]units.Seconds, n),
		Busy:   make(map[string]units.Seconds),
	}
	// Validate deps up front.
	for _, t := range s.tasks {
		for _, d := range t.Deps {
			if _, ok := s.index[d]; !ok {
				return Result{}, fmt.Errorf("sim: task %s depends on unknown task %s", t.ID, d)
			}
		}
	}

	resourceFree := make(map[string]units.Seconds)
	done := make([]bool, n)
	// resourceQueue holds, per resource, the submission-ordered pending
	// task indices; the head must run next to preserve FIFO semantics.
	resourceQueue := make(map[string][]int)
	resourceNames := make([]string, 0)
	for i, t := range s.tasks {
		if _, ok := resourceQueue[t.Resource]; !ok {
			resourceNames = append(resourceNames, t.Resource)
		}
		resourceQueue[t.Resource] = append(resourceQueue[t.Resource], i)
	}
	sort.Strings(resourceNames)

	depsFinish := func(t Task) (units.Seconds, bool) {
		var latest units.Seconds
		for _, d := range t.Deps {
			di := s.index[d]
			if !done[di] {
				return 0, false
			}
			if f := res.Finish[d]; f > latest {
				latest = f
			}
		}
		return latest, true
	}

	completed := 0
	for completed < n {
		progressed := false
		for _, rname := range resourceNames {
			q := resourceQueue[rname]
			for len(q) > 0 {
				t := s.tasks[q[0]]
				ready, ok := depsFinish(t)
				if !ok {
					break // FIFO head blocked; resource stalls
				}
				start := resourceFree[rname]
				if ready > start {
					start = ready
				}
				finish := start + t.Duration
				res.Start[t.ID] = start
				res.Finish[t.ID] = finish
				res.Busy[rname] += t.Duration
				resourceFree[rname] = finish
				done[q[0]] = true
				completed++
				progressed = true
				if finish > res.Makespan {
					res.Makespan = finish
				}
				q = q[1:]
			}
			resourceQueue[rname] = q
		}
		if !progressed {
			return Result{}, fmt.Errorf("sim: dependency cycle among remaining %d tasks", n-completed)
		}
	}
	return res, nil
}

// CriticalPath returns the task IDs on one longest finish-time chain,
// useful for explaining where a pipeline's time went.
func (s *Schedule) CriticalPath(res Result) []string {
	if len(s.tasks) == 0 {
		return nil
	}
	// Find the task finishing last.
	lastID := ""
	var lastFinish units.Seconds = -1
	for _, t := range s.tasks {
		if f := res.Finish[t.ID]; f > lastFinish {
			lastFinish = f
			lastID = t.ID
		}
	}
	var path []string
	visited := make(map[string]bool)
	for lastID != "" && !visited[lastID] {
		visited[lastID] = true
		path = append(path, lastID)
		t := s.tasks[s.index[lastID]]
		// Walk to the dependency (or same-resource predecessor) that gated
		// this task's start.
		next := ""
		var nextFinish units.Seconds = -1
		start := res.Start[t.ID]
		for _, d := range t.Deps {
			if f := res.Finish[d]; f == start && f > nextFinish {
				next = d
				nextFinish = f
			}
		}
		if next == "" {
			// Same-resource predecessor whose finish equals our start.
			for _, o := range s.tasks {
				if o.Resource == t.Resource && o.ID != t.ID && res.Finish[o.ID] == start {
					next = o.ID
					break
				}
			}
		}
		lastID = next
	}
	// Reverse into execution order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}
