package core

import (
	"fmt"

	"github.com/lia-sim/lia/internal/cxl"
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/perf"
	"github.com/lia-sim/lia/internal/units"
)

// Env bundles everything Equations (2)–(9) need: the model's Table 1
// formulas, calibrated compute devices, and the CPU-GPU link. Memory
// placement (§6) enters through two knobs: a possibly CXL-degraded CPU
// device per data class, and a possibly CXL-limited source bandwidth for
// parameter transfers.
type Env struct {
	// Model supplies the Table 1 operand sizes and FLOP counts.
	Model model.Config
	// GPU is the accelerator's calibrated device model.
	GPU perf.Device
	// CPUParam executes CPU-offloaded parameter-dependent sublayers
	// (QKV, OutProj, FC1, FC2); degraded when parameters live in CXL.
	CPUParam perf.Device
	// CPUAttn executes CPU-offloaded attention-scoring sublayers
	// (QKT, SV); degraded when the KV cache lives in CXL.
	CPUAttn perf.Device
	// Link is the CPU↔GPU interconnect.
	Link hw.LinkSpec
	// ParamSrcBW caps the host-side source bandwidth for parameter
	// transfers (Observation-1: min(PCIe, interleaved CXL) when parameters
	// are CXL-resident). Zero means uncapped (DDR).
	ParamSrcBW units.BytesPerSecond
}

// NewEnv builds the evaluation environment for a system and model with
// all host data in DDR.
func NewEnv(sys hw.System, m model.Config) Env {
	return NewEnvWithPlacement(sys, m, cxl.DDROnlyPlacement())
}

// NewEnvWithPlacement builds the environment under a §6 memory placement.
func NewEnvWithPlacement(sys hw.System, m model.Config, pl cxl.Placement) Env {
	cpu := perf.CPUDevice(sys.CPU, hw.AMX)
	pool := cxl.FromSystem(sys)
	env := Env{
		Model:    m,
		GPU:      perf.GPUDevice(sys.GPU),
		CPUParam: cpu,
		CPUAttn:  cpu,
		Link:     sys.HostLink(),
	}
	if !pool.Empty() {
		if pl.Holds(cxl.Parameters) {
			env.CPUParam = pool.DegradeDevice(cpu)
			env.ParamSrcBW = pool.Bandwidth()
		}
		if pl.Holds(cxl.KVCache) {
			env.CPUAttn = pool.DegradeDevice(cpu)
		}
	}
	return env
}

// WithAVXCPU returns a copy of the environment whose CPU devices use the
// AVX512 vector engine instead of AMX — the pre-SPR configuration FlexGen
// and PowerInfer assume (§3.2).
func (e Env) WithAVXCPU(sys hw.System) Env {
	avx := perf.CPUDevice(sys.CPU, hw.AVX512)
	out := e
	out.CPUParam = avx
	out.CPUAttn = avx
	return out
}

// cpuFor returns the CPU device executing sublayer s.
func (e Env) cpuFor(s model.Sublayer) perf.Device {
	if s == model.QKT || s == model.SV {
		return e.CPUAttn
	}
	return e.CPUParam
}

// paramXfer returns the CPU→GPU transfer time for parameter bytes,
// respecting a CXL source-bandwidth cap.
func (e Env) paramXfer(b units.Bytes) units.Seconds {
	bw := e.Link.BW
	if e.ParamSrcBW > 0 && e.ParamSrcBW < bw {
		bw = e.ParamSrcBW
	}
	return units.TransferTime(b, bw, e.Link.Setup)
}

// ddrXfer returns the CPU↔GPU transfer time for DDR-resident bytes
// (activations, KV cache).
func (e Env) ddrXfer(b units.Bytes) units.Seconds {
	return e.Link.Transfer(b)
}

// Breakdown is one sublayer's latency decomposition (Eq. 2's three terms).
type Breakdown struct {
	// Sublayer identifies the decoder sublayer.
	Sublayer model.Sublayer
	// OnCPU records the assignment the breakdown was computed under.
	OnCPU bool
	// Load is T_load: PCIe time for X, Y, and residual operands (Eqs 3–7).
	Load units.Seconds
	// Compute is T_comp: local memory streaming plus FLOP time (Eq. 8).
	Compute units.Seconds
	// Store is T_store: the KV write-back (Eq. 9).
	Store units.Seconds
}

// Total returns Load + Compute + Store.
func (b Breakdown) Total() units.Seconds { return b.Load + b.Compute + b.Store }

// Options modifies the residency assumptions of the latency equations.
// The zero value is the paper's baseline: all parameters and the KV cache
// live in CPU memory.
type Options struct {
	// ParamsResident marks this decoder layer's parameters as already
	// pinned in GPU memory (Optimization-1), eliminating their PCIe
	// transfers for GPU-executed sublayers.
	ParamsResident bool
	// KVOnGPU places the KV cache in GPU memory (feasible for small
	// batches): GPU attention pays no PCIe traffic, while CPU-offloaded
	// attention would have to pull the cache across.
	KVOnGPU bool
	// TPGPUs > 1 models the §8 multi-GPU extension: GPU-assigned
	// sublayers run tensor-parallel across this many GPUs (the caller
	// supplies an aggregated GPU device in Env), paying a ring all-reduce
	// on the hidden states after the out-projection and FC2.
	TPGPUs int
	// TPPeer is the GPU↔GPU link the all-reduce rides on.
	TPPeer hw.LinkSpec
}

// tpAllReduceFloor is the per-all-reduce latency floor (NCCL
// small-message latency plus per-op launch/sync), shared with the
// MultiGPU baseline's calibration.
const tpAllReduceFloor = 600 * units.Microsecond

// TPAllReduceTime returns one ring all-reduce of `bytes` across n GPUs:
// each rank moves 2·(n−1)/n of the tensor, floored by the per-op
// synchronization cost.
func TPAllReduceTime(n int, peer hw.LinkSpec, bytes units.Bytes) units.Seconds {
	if n <= 1 {
		return 0
	}
	t := units.Seconds(2*float64(n-1)/float64(n)) * peer.Transfer(bytes)
	if t < tpAllReduceFloor {
		t = tpAllReduceFloor
	}
	return t
}

// LayerLatency evaluates Eq. (2): the non-overlapped latency of one
// decoder layer under policy p for the given stage, batch size b, and
// sequence length l (input length during prefill; current context length
// during decode). It returns the total and the per-sublayer breakdown.
func LayerLatency(e Env, stage model.Stage, p Policy, b, l int) (units.Seconds, [model.NumSublayers]Breakdown) {
	return LayerLatencyOpts(e, stage, p, b, l, Options{})
}

// LayerLatencyOpts is LayerLatency under explicit residency options.
func LayerLatencyOpts(e Env, stage model.Stage, p Policy, b, l int, opt Options) (units.Seconds, [model.NumSublayers]Breakdown) {
	var total units.Seconds
	var parts [model.NumSublayers]Breakdown
	for _, s := range model.Sublayers() {
		br := sublayerLatency(e, stage, p, s, b, l, opt)
		parts[s] = br
		total += br.Total()
	}
	return total, parts
}

// sublayerLatency evaluates one sublayer's three Eq. (2) terms.
func sublayerLatency(e Env, stage model.Stage, p Policy, s model.Sublayer, b, l int, opt Options) Breakdown {
	i := int(s)
	onCPU := p[i]
	br := Breakdown{Sublayer: s, OnCPU: onCPU}

	dx := e.Model.DataX(stage, s, b, l)
	dy := e.Model.DataY(stage, s, b, l)
	c := e.Model.Compute(stage, s, b, l)

	// --- T_load,X (Eq. 4): the input activation crosses PCIe when this
	// sublayer runs on a different device than its producer.
	if onCPU != p.prev(i) {
		br.Load += e.ddrXfer(dx)
	}

	// --- T_load,Y (Eqs. 5 and 7).
	switch s {
	case model.QKT, model.SV:
		if stage == model.Prefill {
			// Eq. (7): K and V were just produced by sublayer 1; they move
			// iff the producer and consumer devices differ.
			if onCPU != p[model.QKVMapping] {
				br.Load += e.ddrXfer(dy)
			}
		} else if onCPU == opt.KVOnGPU {
			// Decode: the KV cache crosses PCIe when the compute device
			// differs from the cache's home — CPU-resident cache feeding
			// GPU attention (the FlexGen bottleneck, Figure 4), or a
			// GPU-resident cache feeding CPU-offloaded attention.
			br.Load += e.ddrXfer(dy)
		}
	default:
		// Parameter operand: resident in CPU memory, so it crosses PCIe
		// only for GPU execution — unless Optimization-1 already pinned
		// this layer's parameters in GPU memory.
		if !onCPU && !opt.ParamsResident {
			br.Load += e.paramXfer(dy)
		}
	}

	// --- T_load,R (Eq. 6): residual operands for the out-projection
	// (from the attention input) and FC2 (from the FFN input).
	switch s {
	case model.OutProjection:
		if onCPU != p[model.QKVMapping] {
			br.Load += e.ddrXfer(e.Model.DataX(stage, model.QKVMapping, b, l))
		}
	case model.FC2:
		if onCPU != p[model.OutProjection] {
			br.Load += e.ddrXfer(e.Model.DataX(stage, model.OutProjection, b, l))
		}
	}

	// --- T_comp (Eq. 8, corrected to the prose convention).
	rows := b * l
	if stage == model.Decode {
		rows = b
	}
	if onCPU {
		br.Compute = e.cpuFor(s).Time(c, dx+dy, rows)
	} else {
		br.Compute = e.GPU.Time(c, dx+dy, rows)
		// Tensor-parallel GPU execution synchronizes the hidden states
		// (rows × d_model) after the two row-parallel projections (§8's
		// multi-GPU extension).
		if opt.TPGPUs > 1 && (s == model.OutProjection || s == model.FC2) {
			hidden := e.Model.DataX(stage, model.QKVMapping, b, l)
			br.Compute += TPAllReduceTime(opt.TPGPUs, opt.TPPeer, hidden)
		}
	}

	// --- T_store (Eq. 9): freshly produced KV crosses PCIe when the QKV
	// mapping ran on a different device than the cache's home.
	if s == model.QKVMapping && onCPU == opt.KVOnGPU {
		kv := e.Model.KVBytesPerLayer(b, l)
		if stage == model.Decode {
			kv = e.Model.KVBytesPerLayer(b, 1)
		}
		br.Store = e.ddrXfer(kv)
	}
	return br
}

// Optimize solves Eq. (1): it evaluates all 64 policies and returns the
// latency-minimizing one for the given stage, batch size, and sequence
// length. Ties break toward fewer CPU-resident sublayers (preferring the
// simpler all-GPU schedule), then toward the smaller binary encoding, so
// the result is deterministic.
func Optimize(e Env, stage model.Stage, b, l int) (Policy, units.Seconds) {
	return OptimizeOpts(e, stage, b, l, Options{})
}

// OptimizeOpts is Optimize under explicit residency options, used when
// Optimization-1 has already placed the KV cache or parameters on the
// GPU.
func OptimizeOpts(e Env, stage model.Stage, b, l int, opt Options) (Policy, units.Seconds) {
	var best Policy
	bestT := units.Seconds(-1)
	for _, p := range AllPolicies() {
		t, _ := LayerLatencyOpts(e, stage, p, b, l, opt)
		switch {
		case bestT < 0 || t < bestT:
			best, bestT = p, t
		case t == bestT && p.CountCPU() < best.CountCPU():
			best = p
		}
	}
	return best, bestT
}

// StagePolicies holds the optimizer's decision for one (B, L) point.
type StagePolicies struct {
	// B and L locate the point in Figure 9's plane.
	B, L int
	// Prefill is the prefill-stage policy.
	Prefill Policy
	// Decode is the decoding-stage policy (evaluated at context length L;
	// §7.1 shows it depends only on B).
	Decode Policy
}

// OptimalPair returns the prefill and decode policies for a workload
// point, the pairing Figure 9 plots.
func OptimalPair(e Env, b, l int) StagePolicies {
	pre, _ := Optimize(e, model.Prefill, b, l)
	dec, _ := Optimize(e, model.Decode, b, l)
	return StagePolicies{B: b, L: l, Prefill: pre, Decode: dec}
}

// PolicyMap evaluates OptimalPair over a (B, L) grid — Figure 9.
func PolicyMap(e Env, bs, ls []int) []StagePolicies {
	out := make([]StagePolicies, 0, len(bs)*len(ls))
	for _, b := range bs {
		for _, l := range ls {
			out = append(out, OptimalPair(e, b, l))
		}
	}
	return out
}

// Validate reports an incomplete environment.
func (e Env) Validate() error {
	if err := e.Model.Validate(); err != nil {
		return err
	}
	if e.GPU.Ceiling <= 0 && e.CPUParam.Ceiling <= 0 {
		return fmt.Errorf("core: environment has no usable compute device")
	}
	if e.Link.BW <= 0 {
		return fmt.Errorf("core: environment has no CPU-GPU link")
	}
	return nil
}
