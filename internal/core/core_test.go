package core

import (
	"testing"

	"github.com/lia-sim/lia/internal/cxl"
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/units"
)

func sprA100Env() Env { return NewEnv(hw.SPRA100, model.OPT175B) }

func TestPolicyString(t *testing.T) {
	if FullGPU.String() != "(0,0,0,0,0,0)" {
		t.Errorf("FullGPU = %s", FullGPU)
	}
	if FullCPU.String() != "(1,1,1,1,1,1)" {
		t.Errorf("FullCPU = %s", FullCPU)
	}
	if PartialCPU.String() != "(0,1,1,0,0,0)" {
		t.Errorf("PartialCPU = %s", PartialCPU)
	}
	if MoEPartial.String() != "(0,1,1,0,1,1)" {
		t.Errorf("MoEPartial = %s", MoEPartial)
	}
}

func TestParsePolicyRoundTrip(t *testing.T) {
	for _, p := range AllPolicies() {
		got, err := ParsePolicy(p.String())
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if got != p {
			t.Fatalf("round trip %s → %s", p, got)
		}
	}
	if _, err := ParsePolicy("(1,0)"); err == nil {
		t.Error("short vector accepted")
	}
	if _, err := ParsePolicy("(1,0,2,0,0,0)"); err == nil {
		t.Error("non-binary element accepted")
	}
}

func TestAllPoliciesDistinct(t *testing.T) {
	all := AllPolicies()
	if len(all) != 64 {
		t.Fatalf("got %d policies, want 64", len(all))
	}
	seen := map[Policy]bool{}
	for _, p := range all {
		if seen[p] {
			t.Fatalf("duplicate policy %s", p)
		}
		seen[p] = true
	}
	if all[0] != FullGPU || all[63] != FullCPU {
		t.Error("enumeration order unexpected")
	}
}

func TestCountCPUAndOnCPU(t *testing.T) {
	if PartialCPU.CountCPU() != 2 {
		t.Error("PartialCPU should place 2 sublayers on CPU")
	}
	if !PartialCPU.OnCPU(model.QKT) || PartialCPU.OnCPU(model.FC1) {
		t.Error("OnCPU assignments wrong")
	}
}

func TestEnvValidate(t *testing.T) {
	if err := sprA100Env().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := sprA100Env()
	bad.Link.BW = 0
	if bad.Validate() == nil {
		t.Error("link-less env accepted")
	}
}

// TestInsight1 reproduces §3.1: with full memory offloading (all compute
// on GPU) at B=1, parameter transfer dominates the decode-layer latency
// (>95%).
func TestInsight1TransferDominatesFullGPU(t *testing.T) {
	e := sprA100Env()
	total, parts := LayerLatency(e, model.Decode, FullGPU, 1, 512)
	var load units.Seconds
	for _, br := range parts {
		load += br.Load
	}
	if frac := float64(load) / float64(total); frac < 0.95 {
		t.Errorf("transfer fraction = %.2f, want >0.95", frac)
	}
}

// TestPartialCPUEliminatesKVTransfer verifies that offloading attention
// scoring to the CPU removes the decode-stage KV-cache PCIe traffic
// (§3.2's motivation).
func TestPartialCPUEliminatesKVTransfer(t *testing.T) {
	e := sprA100Env()
	_, partsGPU := LayerLatency(e, model.Decode, FullGPU, 32, 1024)
	_, partsPart := LayerLatency(e, model.Decode, PartialCPU, 32, 1024)
	if partsGPU[model.QKT].Load <= 0 {
		t.Fatal("full-GPU decode should stream the KV cache over PCIe")
	}
	// Attention on CPU: Y load vanishes; only the small activation hop
	// remains.
	if partsPart[model.QKT].Load >= partsGPU[model.QKT].Load/10 {
		t.Errorf("partial policy QKT load = %v, want ≪ %v", partsPart[model.QKT].Load, partsGPU[model.QKT].Load)
	}
}

// TestKVStoreOnlyForGPUQKV checks Eq. (9): the KV write-back appears
// exactly when the QKV mapping runs on the GPU.
func TestKVStoreOnlyForGPUQKV(t *testing.T) {
	e := sprA100Env()
	_, gpu := LayerLatency(e, model.Prefill, FullGPU, 4, 256)
	if gpu[model.QKVMapping].Store <= 0 {
		t.Error("GPU-executed QKV must store KV back to CPU memory")
	}
	_, cpu := LayerLatency(e, model.Prefill, FullCPU, 4, 256)
	if cpu[model.QKVMapping].Store != 0 {
		t.Error("CPU-executed QKV must not pay a KV store")
	}
	for _, s := range model.Sublayers() {
		if s != model.QKVMapping && gpu[s].Store != 0 {
			t.Errorf("%s has nonzero store", s)
		}
	}
}

// TestResidualTransfer checks Eq. (6): a policy that splits the
// out-projection from the QKV mapping pays the residual hop.
func TestResidualTransfer(t *testing.T) {
	e := sprA100Env()
	// Both policies place OutProj on the CPU with SV on the GPU, so the
	// X-activation hop and the absent parameter transfer are identical;
	// they differ only in where QKV ran, i.e. whether the residual
	// operand must cross PCIe.
	residualCrosses := Policy{false, false, false, true, false, false}
	residualLocal := Policy{true, false, false, true, false, false}
	_, far := LayerLatency(e, model.Decode, residualCrosses, 8, 256)
	_, near := LayerLatency(e, model.Decode, residualLocal, 8, 256)
	if far[model.OutProjection].Load <= near[model.OutProjection].Load {
		t.Errorf("residual crossing devices must add load: %v vs %v",
			far[model.OutProjection].Load, near[model.OutProjection].Load)
	}
}

// TestPrefillKVMovesOnlyAcrossDevices checks Eq. (7): during prefill the
// fresh K/V move only when sublayer 1 and the attention sublayers run on
// different devices.
func TestPrefillKVMovesOnlyAcrossDevices(t *testing.T) {
	e := sprA100Env()
	_, same := LayerLatency(e, model.Prefill, FullGPU, 8, 256)
	if same[model.QKT].Load != 0 {
		t.Errorf("co-located prefill attention paid %v load", same[model.QKT].Load)
	}
	mixed := Policy{true, false, false, false, false, false} // QKV on CPU, attention on GPU
	_, parts := LayerLatency(e, model.Prefill, mixed, 8, 256)
	if parts[model.QKT].Load <= 0 {
		t.Error("cross-device prefill attention must move K over PCIe")
	}
}

// TestFigure9PrefillTransition: small B·L prefers Full CPU, large B·L
// prefers Full GPU, with the transition in the low-hundreds-to-low-
// thousands band (paper: B·L ≈ 850 for OPT-175B on SPR-A100).
func TestFigure9PrefillTransition(t *testing.T) {
	e := sprA100Env()
	small, _ := Optimize(e, model.Prefill, 1, 32)
	if small != FullCPU {
		t.Errorf("B·L=32 prefill policy = %s, want FullCPU", small)
	}
	large, _ := Optimize(e, model.Prefill, 8, 1024)
	if large != FullGPU {
		t.Errorf("B·L=8192 prefill policy = %s, want FullGPU", large)
	}
	// Locate the crossover along B=1.
	crossover := 0
	prev := true
	for l := 32; l <= 4096; l += 32 {
		p, _ := Optimize(e, model.Prefill, 1, l)
		onCPU := p == FullCPU
		if prev && !onCPU {
			crossover = l
			break
		}
		prev = onCPU
	}
	if crossover < 200 || crossover > 2200 {
		t.Errorf("prefill CPU→GPU crossover at B·L=%d, want within [200, 2200] (paper: ≈850)", crossover)
	}
}

// TestFigure9DecodeTransition: decode uses Full CPU at small B and the
// partial policy (attention on CPU) at large B, independent of L.
func TestFigure9DecodeTransition(t *testing.T) {
	e := sprA100Env()
	small, _ := Optimize(e, model.Decode, 1, 512)
	if small != FullCPU {
		t.Errorf("B=1 decode policy = %s, want FullCPU", small)
	}
	large, _ := Optimize(e, model.Decode, 1200, 512)
	if large != PartialCPU {
		t.Errorf("B=1200 decode policy = %s, want PartialCPU", large)
	}
	// The decode policy must not depend on L (§7.1).
	for _, b := range []int{1, 64, 1200} {
		p256, _ := Optimize(e, model.Decode, b, 256)
		p1024, _ := Optimize(e, model.Decode, b, 1024)
		if p256 != p1024 {
			t.Errorf("decode policy at B=%d depends on L: %s vs %s", b, p256, p1024)
		}
	}
}

// TestDecodeThresholdBand locates the decode Full-CPU → Partial
// transition and checks it falls in the paper's neighbourhood (B ≈ 858).
func TestDecodeThresholdBand(t *testing.T) {
	e := sprA100Env()
	threshold := 0
	for b := 16; b <= 4096; b += 16 {
		p, _ := Optimize(e, model.Decode, b, 512)
		if p != FullCPU {
			threshold = b
			break
		}
	}
	if threshold < 200 || threshold > 2000 {
		t.Errorf("decode transition at B=%d, want within [200, 2000] (paper: ≈858)", threshold)
	}
}

// TestOptimizeBeatsCanonicalPolicies: the optimizer can never be worse
// than any fixed policy.
func TestOptimizeBeatsCanonicalPolicies(t *testing.T) {
	e := sprA100Env()
	for _, stage := range []model.Stage{model.Prefill, model.Decode} {
		for _, b := range []int{1, 64, 900} {
			for _, l := range []int{32, 512} {
				_, bestT := Optimize(e, stage, b, l)
				for _, p := range []Policy{FullGPU, FullCPU, PartialCPU} {
					t1, _ := LayerLatency(e, stage, p, b, l)
					if bestT > t1+1e-12 {
						t.Errorf("optimizer (%v) worse than %s (%v) at %v B=%d L=%d", bestT, p, t1, stage, b, l)
					}
				}
			}
		}
	}
}

// TestH100PrefersGPUMorOften reproduces §7.1 "Impact of GPU capability":
// the H100 system picks GPU-leaning policies for a wider (B, L) range.
func TestH100PrefersGPUMoreOften(t *testing.T) {
	a100 := sprA100Env()
	h100 := NewEnv(hw.SPRH100, model.OPT175B)
	bs := []int{1, 2, 4, 8, 16, 32, 64}
	ls := []int{32, 64, 128, 256, 512, 1024}
	countCPU := func(e Env) int {
		n := 0
		for _, cell := range PolicyMap(e, bs, ls) {
			n += cell.Prefill.CountCPU() + cell.Decode.CountCPU()
		}
		return n
	}
	if countCPU(h100) >= countCPU(a100) {
		t.Error("H100 system should lean GPU-ward relative to A100")
	}
	// Yet the CPU-centric policy must still appear somewhere on H100.
	found := false
	for _, cell := range PolicyMap(h100, bs, ls) {
		if cell.Prefill == FullCPU || cell.Decode == FullCPU {
			found = true
			break
		}
	}
	if !found {
		t.Error("Full CPU offloading should survive on SPR-H100 for small shapes")
	}
}

// TestMoEAdaptability reproduces §7.1: for a Mixture-of-Experts model the
// optimizer extends CPU offloading to the expert FFN sublayers.
func TestMoEAdaptability(t *testing.T) {
	dense := NewEnv(hw.SPRA100, model.OPT30B)
	moe := NewEnv(hw.SPRA100, model.MoE16x)
	b, l := 256, 512
	pDense, _ := Optimize(dense, model.Decode, b, l)
	pMoE, _ := Optimize(moe, model.Decode, b, l)
	if pDense.OnCPU(model.FC1) && pDense.OnCPU(model.FC2) && pDense != FullCPU {
		t.Skip("dense baseline already FFN-on-CPU at this point; pick a different point")
	}
	if !pMoE.OnCPU(model.FC1) || !pMoE.OnCPU(model.FC2) {
		t.Errorf("MoE decode policy = %s, want FFN sublayers on CPU", pMoE)
	}
}

// TestAVXCPUShrinksCPUBenefit reproduces §3.2/§4: with AVX512 instead of
// AMX, compute-offloading becomes far less attractive.
func TestAVXCPUShrinksCPUBenefit(t *testing.T) {
	amx := sprA100Env()
	avx := amx.WithAVXCPU(hw.SPRA100)
	tAMX, _ := LayerLatency(amx, model.Prefill, FullCPU, 4, 512)
	tAVX, _ := LayerLatency(avx, model.Prefill, FullCPU, 4, 512)
	if ratio := float64(tAVX) / float64(tAMX); ratio < 3 {
		t.Errorf("AVX/AMX full-CPU prefill ratio = %.1f, want ≥3 (paper: ≈4.5)", ratio)
	}
}

// TestCXLPlacementNeutralForGPUPolicies reproduces Observation-1 at the
// equation level: placing parameters in CXL leaves the large-B decode
// latency (GPU-parameter policy) nearly unchanged.
func TestCXLPlacementNeutralForGPUPolicies(t *testing.T) {
	sys := hw.SPRA100.WithCXL(2, hw.SamsungCXL128)
	ddr := NewEnv(sys, model.OPT175B)
	cxlEnv := NewEnvWithPlacement(sys, model.OPT175B, cxl.PolicyPlacement())
	tDDR, _ := LayerLatency(ddr, model.Decode, PartialCPU, 900, 512)
	tCXL, _ := LayerLatency(cxlEnv, model.Decode, PartialCPU, 900, 512)
	if ratio := float64(tCXL) / float64(tDDR); ratio > 1.1 {
		t.Errorf("CXL parameter placement cost ratio = %.3f, want ≤1.10", ratio)
	}
}

// TestNaiveCXLPlacementHurts reproduces Observation-2: putting the KV
// cache in CXL slows the CPU-offloaded attention substantially.
func TestNaiveCXLPlacementHurts(t *testing.T) {
	sys := hw.SPRA100.WithCXL(2, hw.SamsungCXL128)
	policy := NewEnvWithPlacement(sys, model.OPT175B, cxl.PolicyPlacement())
	naive := NewEnvWithPlacement(sys, model.OPT175B, cxl.NaivePlacement())
	tPolicy, _ := LayerLatency(policy, model.Decode, PartialCPU, 900, 512)
	tNaive, _ := LayerLatency(naive, model.Decode, PartialCPU, 900, 512)
	if ratio := float64(tNaive) / float64(tPolicy); ratio < 1.5 {
		t.Errorf("naive/policy placement ratio = %.2f, want ≥1.5", ratio)
	}
}

// TestLatencyPositiveForAllPolicies is a sweep invariant: every policy
// yields a positive finite latency and a consistent breakdown sum.
func TestLatencyPositiveForAllPolicies(t *testing.T) {
	e := sprA100Env()
	for _, p := range AllPolicies() {
		for _, stage := range []model.Stage{model.Prefill, model.Decode} {
			total, parts := LayerLatency(e, stage, p, 16, 128)
			if total <= 0 {
				t.Fatalf("policy %s %v latency = %v", p, stage, total)
			}
			var sum units.Seconds
			for _, br := range parts {
				if br.Load < 0 || br.Compute <= 0 || br.Store < 0 {
					t.Fatalf("policy %s %v has invalid breakdown %+v", p, stage, br)
				}
				sum += br.Total()
			}
			if diff := float64(total - sum); diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("breakdown does not sum to total: %v vs %v", sum, total)
			}
		}
	}
}

// TestOptionsParamsResident: pinning a layer's parameters on the GPU
// removes their PCIe transfers for GPU execution (Optimization-1).
func TestOptionsParamsResident(t *testing.T) {
	e := sprA100Env()
	base, _ := LayerLatencyOpts(e, model.Decode, FullGPU, 1, 512, Options{})
	pinned, parts := LayerLatencyOpts(e, model.Decode, FullGPU, 1, 512, Options{ParamsResident: true, KVOnGPU: true})
	if pinned >= base/5 {
		t.Errorf("pinned layer latency %v not ≪ streamed %v", pinned, base)
	}
	for _, br := range parts {
		if br.Load != 0 || br.Store != 0 {
			t.Errorf("pinned all-GPU layer should have zero PCIe time, got %+v", br)
		}
	}
}

// TestOptionsKVOnGPU: a GPU-resident cache removes decode KV traffic for
// GPU attention but adds it for CPU-offloaded attention.
func TestOptionsKVOnGPU(t *testing.T) {
	e := sprA100Env()
	_, gpuAttn := LayerLatencyOpts(e, model.Decode, FullGPU, 8, 1024, Options{KVOnGPU: true})
	if gpuAttn[model.QKT].Load != 0 {
		t.Error("GPU attention with GPU-resident cache should not touch PCIe")
	}
	_, cpuAttn := LayerLatencyOpts(e, model.Decode, PartialCPU, 8, 1024, Options{KVOnGPU: true})
	if cpuAttn[model.QKT].Load <= 0 {
		t.Error("CPU attention with GPU-resident cache must pull it across PCIe")
	}
	// And the store side: CPU-executed QKV must push fresh KV up to the GPU.
	_, cpuQKV := LayerLatencyOpts(e, model.Decode, FullCPU, 8, 1024, Options{KVOnGPU: true})
	if cpuQKV[model.QKVMapping].Store <= 0 {
		t.Error("CPU QKV with GPU-resident cache must store KV over PCIe")
	}
}

// TestLatencyMonotoneInBatch: for any fixed policy, a larger batch never
// reduces a layer's latency.
func TestLatencyMonotoneInBatch(t *testing.T) {
	e := sprA100Env()
	for _, p := range []Policy{FullGPU, FullCPU, PartialCPU} {
		for _, stage := range []model.Stage{model.Prefill, model.Decode} {
			prev := units.Seconds(0)
			for _, b := range []int{1, 4, 16, 64, 256, 1024} {
				cur, _ := LayerLatency(e, stage, p, b, 256)
				if cur < prev {
					t.Errorf("%s %v: latency fell from %v to %v at B=%d", p, stage, prev, cur, b)
				}
				prev = cur
			}
		}
	}
}

// TestOptimalLatencyMonotoneInBatch: the optimized latency is also
// monotone (more work can't get cheaper even with a policy switch).
func TestOptimalLatencyMonotoneInBatch(t *testing.T) {
	e := sprA100Env()
	prev := units.Seconds(0)
	for _, b := range []int{1, 8, 64, 512} {
		_, cur := Optimize(e, model.Decode, b, 256)
		if cur < prev {
			t.Errorf("optimal decode latency fell at B=%d: %v → %v", b, prev, cur)
		}
		prev = cur
	}
}

// TestTPAllReduceTime: zero for one GPU, floored for tiny messages,
// bandwidth-scaled for big ones.
func TestTPAllReduceTime(t *testing.T) {
	if TPAllReduceTime(1, hw.NVLink3, units.GB) != 0 {
		t.Error("single GPU needs no all-reduce")
	}
	tiny := TPAllReduceTime(8, hw.NVLink3, 1024)
	if tiny != tpAllReduceFloor {
		t.Errorf("tiny all-reduce = %v, want the %v floor", tiny, tpAllReduceFloor)
	}
	big := TPAllReduceTime(8, hw.NVLink3, 10*units.GB)
	if big <= tiny {
		t.Error("large all-reduce should exceed the floor")
	}
	// Ring volume factor: 2·(n-1)/n of the tensor per rank.
	want := units.Seconds(2*7.0/8.0) * hw.NVLink3.Transfer(10*units.GB)
	if diff := float64(big - want); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("ring all-reduce = %v, want %v", big, want)
	}
}

// TestTPOptionAddsOnlyToGPUProjections: the TP all-reduce charge lands
// exactly on GPU-assigned OutProj and FC2.
func TestTPOptionAddsOnlyToGPUProjections(t *testing.T) {
	e := sprA100Env()
	opt := Options{TPGPUs: 8, TPPeer: hw.NVLink3}
	_, base := LayerLatencyOpts(e, model.Decode, FullGPU, 8, 256, Options{})
	_, tp := LayerLatencyOpts(e, model.Decode, FullGPU, 8, 256, opt)
	for _, s := range model.Sublayers() {
		grew := tp[s].Compute > base[s].Compute
		wantGrowth := s == model.OutProjection || s == model.FC2
		if grew != wantGrowth {
			t.Errorf("%s: compute grew=%v, want %v", s, grew, wantGrowth)
		}
	}
	// CPU-assigned projections pay nothing.
	_, cpuTP := LayerLatencyOpts(e, model.Decode, FullCPU, 8, 256, opt)
	_, cpuBase := LayerLatencyOpts(e, model.Decode, FullCPU, 8, 256, Options{})
	for _, s := range model.Sublayers() {
		if cpuTP[s].Compute != cpuBase[s].Compute {
			t.Errorf("%s: CPU compute changed under TP options", s)
		}
	}
}
