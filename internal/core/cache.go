package core

import (
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/runner"
	"github.com/lia-sim/lia/internal/units"
)

// optKey identifies one optimizer invocation. Env, Options and the shape
// are all flat comparable structs (no slices, maps or pointers), so the
// full input vector is the key — two calls share a cache slot only when
// every calibrated constant matches.
type optKey struct {
	env   Env
	stage model.Stage
	b, l  int
	opt   Options
}

type optVal struct {
	policy  Policy
	latency units.Seconds
}

// optCache memoizes OptimizeOpts across the process. The optimizer
// enumerates all 64 policies per call, and serving simulators re-ask for
// the same (batch, context) points thousands of times.
var optCache runner.Cache[optKey, optVal]

// OptimizeOptsCached is OptimizeOpts behind a process-wide single-flight
// cache: concurrent identical calls compute once. OptimizeOpts is a pure
// function of its arguments, so memoization is exact.
func OptimizeOptsCached(e Env, stage model.Stage, b, l int, opt Options) (Policy, units.Seconds) {
	v, _ := optCache.Do(optKey{env: e, stage: stage, b: b, l: l, opt: opt}, func() (optVal, error) {
		p, t := OptimizeOpts(e, stage, b, l, opt)
		return optVal{policy: p, latency: t}, nil
	})
	return v.policy, v.latency
}

// ResetOptimizeCache drops every memoized optimizer decision.
func ResetOptimizeCache() { optCache.Reset() }
