// Package core implements the paper's primary contribution: LIA's
// compute-offloading algorithm (§5.1). An offloading policy is a vector
// p ∈ {0,1}⁶ assigning each of the six decoder sublayers to the CPU
// (p_i = 1) or the GPU (p_i = 0). The package evaluates the latency
// Equations (2)–(9) for any policy, batch size, and sequence length, and
// exhaustively minimizes over all 64 policies to find p_opt (Eq. 1).
//
// Note on the paper's Eq. (5)/(8)/(9): as printed they attach the GPU
// cost branches to p_i = 1, contradicting the prose definition
// "computed on CPU (p_i = 1)" and the named policies of §7.1 (Full CPU
// Offloading ↦ (1,1,1,1,1,1)). We follow the prose definition, which
// makes the equations internally consistent: parameters stream over PCIe
// exactly when a parameter-dependent sublayer runs on the GPU, and the
// generated KV is stored back to CPU memory exactly when the QKV mapping
// runs on the GPU.
package core

import (
	"fmt"
	"strings"

	"github.com/lia-sim/lia/internal/model"
)

// Policy is an offloading vector: Policy[i] == true places sublayer i on
// the CPU (p_i = 1), false on the GPU (p_i = 0).
type Policy [model.NumSublayers]bool

// The canonical policies of §7.1.
var (
	// FullGPU computes every sublayer on the GPU: p = (0,0,0,0,0,0).
	FullGPU = Policy{}
	// FullCPU offloads every sublayer to the CPU: p = (1,1,1,1,1,1).
	FullCPU = Policy{true, true, true, true, true, true}
	// PartialCPU offloads only the attention-scoring sublayers:
	// p = (0,1,1,0,0,0). This is also FlexGen's fixed compute-offloading
	// choice.
	PartialCPU = Policy{false, true, true, false, false, false}
	// MoEPartial additionally offloads the expert FFN sublayers:
	// p = (0,1,1,0,1,1), preferred for Mixture-of-Experts models whose
	// FC parameters outweigh their active FLOPs (§7.1).
	MoEPartial = Policy{false, true, true, false, true, true}
)

// String renders the vector the way the paper writes it, e.g.
// "(0,1,1,0,0,0)".
func (p Policy) String() string {
	parts := make([]string, len(p))
	for i, onCPU := range p {
		if onCPU {
			parts[i] = "1"
		} else {
			parts[i] = "0"
		}
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// OnCPU reports sublayer s's assignment.
func (p Policy) OnCPU(s model.Sublayer) bool { return p[s] }

// CountCPU returns how many sublayers run on the CPU.
func (p Policy) CountCPU() int {
	n := 0
	for _, c := range p {
		if c {
			n++
		}
	}
	return n
}

// ParsePolicy parses the "(0,1,1,0,0,0)" notation.
func ParsePolicy(s string) (Policy, error) {
	trimmed := strings.Trim(strings.TrimSpace(s), "()")
	parts := strings.Split(trimmed, ",")
	var p Policy
	if len(parts) != model.NumSublayers {
		return p, fmt.Errorf("core: policy %q must have %d elements", s, model.NumSublayers)
	}
	for i, part := range parts {
		switch strings.TrimSpace(part) {
		case "0":
			p[i] = false
		case "1":
			p[i] = true
		default:
			return p, fmt.Errorf("core: policy element %q must be 0 or 1", part)
		}
	}
	return p, nil
}

// AllPolicies enumerates all 64 offloading vectors in ascending binary
// order (element 0 is the most significant bit).
func AllPolicies() []Policy {
	out := make([]Policy, 0, 1<<model.NumSublayers)
	for bits := 0; bits < 1<<model.NumSublayers; bits++ {
		var p Policy
		for i := 0; i < model.NumSublayers; i++ {
			p[i] = bits&(1<<(model.NumSublayers-1-i)) != 0
		}
		out = append(out, p)
	}
	return out
}

// prev returns the policy bit governing where sublayer i's input
// activation lives: the assignment of the previous sublayer, with
// p_0 = p_6 (the previous decoder layer's FC2) per §5.1.
func (p Policy) prev(i int) bool {
	if i == 0 {
		return p[model.NumSublayers-1]
	}
	return p[i-1]
}
