package serve

import (
	"math"
	"testing"

	"github.com/lia-sim/lia/internal/llm"
	"github.com/lia-sim/lia/internal/trace"
	"github.com/lia-sim/lia/internal/units"
)

// FuzzServeConfigValidate throws arbitrary shapes at Config.Validate and
// then — whenever Validate accepts — actually runs SimulateContinuous
// over a small trace with injected costs. The property under test: a
// validated configuration must never panic or hang; it either serves the
// trace or returns an error (impossible KV budgets are errors, not
// loops — the regression the idle-branch fix closed).
func FuzzServeConfigValidate(f *testing.F) {
	f.Add(8, 2.0, int64(1<<24), 16)
	f.Add(1, 0.0, int64(0), 0)
	f.Add(0, -1.0, int64(-5), -3)       // invalid everywhere
	f.Add(4, math.NaN(), int64(512), 4) // NaN wait
	f.Add(3, 1.0, int64(1), 1)          // budget too small for one block
	f.Fuzz(func(t *testing.T, maxBatch int, maxWait float64, kvBudget int64, blockTokens int) {
		// Cap magnitudes: a pool is backed by real slices, and the fuzzer
		// finding "allocating 2^60 blocks OOMs" is not a scheduler bug.
		if kvBudget > 1<<26 || blockTokens > 1<<12 {
			t.Skip()
		}
		cfg := Config{
			Model:         llm.TinyConfig(),
			MaxBatch:      maxBatch,
			MaxWait:       units.Seconds(maxWait),
			KVBudget:      units.Bytes(kvBudget),
			KVBlockTokens: blockTokens,
			StepCosts: &StepCosts{
				Prefill: func(b, maxIn int) (units.Seconds, error) { return units.Seconds(b*maxIn) * 1e-3, nil },
				Decode:  func(b, meanCtx int) (units.Seconds, error) { return units.Seconds(b+meanCtx) * 1e-3, nil },
			},
		}
		err := cfg.Validate()
		if maxBatch < 1 || maxWait < 0 || math.IsNaN(maxWait) || kvBudget < 0 || (kvBudget > 0 && blockTokens < 0) {
			if err == nil {
				t.Fatalf("degenerate config accepted: %+v", cfg)
			}
			return
		}
		if err != nil {
			t.Fatalf("valid config rejected: %v", err)
		}
		reqs := []Request{
			{Request: trace.Request{InputLen: 2, OutputLen: 3}, Arrival: 0},
			{Request: trace.Request{InputLen: 7, OutputLen: 1}, Arrival: 0},
			{Request: trace.Request{InputLen: 4, OutputLen: 5}, Arrival: 0.002},
		}
		m, simErr := SimulateContinuous(cfg, reqs)
		if simErr != nil {
			return // tight budgets legitimately reject the trace — but never hang
		}
		if m.Completed != len(reqs) {
			t.Fatalf("completed %d of %d with no error", m.Completed, len(reqs))
		}
		if m.GeneratedTokens < 9 { // 3+1+5, more under preemption recomputation
			t.Fatalf("generated %d tokens, want ≥9", m.GeneratedTokens)
		}
		if !(m.P50 <= m.P95 && m.P95 <= m.P99) {
			t.Fatalf("percentiles out of order: %v %v %v", m.P50, m.P95, m.P99)
		}
	})
}
