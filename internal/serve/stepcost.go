package serve

import (
	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/exec"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/runner"
	"github.com/lia-sim/lia/internal/units"
)

// ctxBucket quantizes context lengths for iteration-cost lookups: policies
// and per-step costs change slowly along the context axis, so all lengths
// in a 64-token bucket share one optimizer call and one cost evaluation.
const ctxBucket = 64

// bucketCtx maps a context length to its bucket representative (the
// bucket floor, clamped to ≥1). Both the policy and the cost are
// evaluated at this representative, which makes the cached value a pure
// function of the bucket — unlike a first-length-seen cache, the result
// cannot depend on the order the simulator visits context lengths.
func bucketCtx(l int) int {
	q := l / ctxBucket * ctxBucket
	if q < 1 {
		q = 1
	}
	return q
}

// stepKey identifies one stage execution. exec.Plan is a flat comparable
// struct (Env, Policy, Options, layer counts, flags), so the full plan
// participates in the key and simulators with different placements or
// pinning never share entries.
type stepKey struct {
	plan  exec.Plan
	stage model.Stage
	b, l  int
}

// stepCache memoizes per-iteration stage costs process-wide. The serving
// simulators ask for the same (plan, stage, shape) points thousands of
// times per run and across runs of the same configuration; RunStage is a
// pure function of those inputs, so memoization is exact and the cache is
// shared by every simulator (single-flight under concurrent simulations).
var stepCache runner.Cache[stepKey, units.Seconds]

// stageCost runs one stage through the shared memoization cache.
func stageCost(p exec.Plan, stage model.Stage, b, l int) (units.Seconds, error) {
	return stepCache.Do(stepKey{plan: p, stage: stage, b: b, l: l}, func() (units.Seconds, error) {
		res, err := p.RunStage(stage, b, l)
		if err != nil {
			return 0, err
		}
		return res.Latency, nil
	})
}

// decodeStepCost optimizes the decode policy for the bucketed context and
// returns the memoized per-iteration cost. Used by both the continuous
// and chunked simulators, replacing their per-call private maps.
func decodeStepCost(base exec.Plan, b, l int) (units.Seconds, error) {
	lq := bucketCtx(l)
	pol, _ := core.OptimizeOptsCached(base.Env, model.Decode, b, lq, base.Opt)
	p := base
	p.Policy = pol
	return stageCost(p, model.Decode, b, lq)
}

// ResetStepCache drops every memoized stage cost (tests that mutate
// shared hardware or model tables in place).
func ResetStepCache() { stepCache.Reset() }
