package serve

import (
	"testing"

	"github.com/lia-sim/lia/internal/engine"
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/trace"
	"github.com/lia-sim/lia/internal/units"
)

func genReqs(t *testing.T, n int, rate float64) []Request {
	t.Helper()
	gen, err := trace.NewGenerator(trace.Code, 32, 256, 9)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := PoissonArrivals(gen, n, rate, 10)
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

func baseConfig() Config {
	return Config{
		System:    hw.SPRA100,
		Model:     model.OPT30B,
		Framework: engine.LIA,
		MaxBatch:  8,
		MaxWait:   2,
	}
}

func TestPoissonArrivals(t *testing.T) {
	reqs := genReqs(t, 200, 5)
	if len(reqs) != 200 {
		t.Fatalf("%d requests", len(reqs))
	}
	var prev units.Seconds = -1
	for _, r := range reqs {
		if r.Arrival <= prev {
			t.Fatal("arrivals must be strictly increasing")
		}
		prev = r.Arrival
	}
	// Mean inter-arrival ≈ 1/rate.
	mean := float64(reqs[len(reqs)-1].Arrival) / float64(len(reqs))
	if mean < 0.15 || mean > 0.27 {
		t.Errorf("mean inter-arrival = %.3f, want ≈0.2", mean)
	}
	if _, err := PoissonArrivals(nil, 1, 0, 1); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestSimulateBasics(t *testing.T) {
	reqs := genReqs(t, 24, 10)
	m, err := Simulate(baseConfig(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Completed != 24 {
		t.Errorf("completed %d/24", m.Completed)
	}
	if m.Batches < 3 || m.MeanBatchSize > 8 {
		t.Errorf("batches=%d mean size=%.1f", m.Batches, m.MeanBatchSize)
	}
	if m.Throughput <= 0 || m.Makespan <= 0 {
		t.Errorf("throughput=%v makespan=%v", m.Throughput, m.Makespan)
	}
	if !(m.P50 <= m.P95 && m.P95 <= m.P99) {
		t.Errorf("percentiles out of order: %v %v %v", m.P50, m.P95, m.P99)
	}
	if m.Mean < m.MeanQueueing {
		t.Error("total latency must include queueing")
	}
}

func TestValidation(t *testing.T) {
	cfg := baseConfig()
	cfg.MaxBatch = 0
	if _, err := Simulate(cfg, genReqs(t, 2, 1)); err == nil {
		t.Error("MaxBatch=0 accepted")
	}
	cfg = baseConfig()
	cfg.MaxWait = -1
	if _, err := Simulate(cfg, genReqs(t, 2, 1)); err == nil {
		t.Error("negative MaxWait accepted")
	}
	if _, err := Simulate(baseConfig(), nil); err == nil {
		t.Error("empty stream accepted")
	}
	unsorted := genReqs(t, 3, 1)
	unsorted[0].Arrival, unsorted[2].Arrival = unsorted[2].Arrival, unsorted[0].Arrival
	if _, err := Simulate(baseConfig(), unsorted); err == nil {
		t.Error("unsorted stream accepted")
	}
}

// TestBiggerBatchesRaiseThroughput: under a heavy arrival stream, a
// larger MaxBatch improves sustained throughput — the offline-inference
// motivation of §1.
func TestBiggerBatchesRaiseThroughput(t *testing.T) {
	reqs := genReqs(t, 64, 1000) // effectively all queued at once
	small := baseConfig()
	small.MaxBatch = 2
	big := baseConfig()
	big.MaxBatch = 32
	ms, err := Simulate(small, reqs)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := Simulate(big, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if mb.Throughput <= ms.Throughput {
		t.Errorf("MaxBatch=32 throughput %.1f should beat MaxBatch=2's %.1f", mb.Throughput, ms.Throughput)
	}
}

// TestLightLoadLowLatency: at low arrival rates the batcher degenerates
// to near-single-request service and queueing stays below the batching
// window.
func TestLightLoadLowLatency(t *testing.T) {
	reqs := genReqs(t, 6, 0.01) // one request every ~100 s
	cfg := baseConfig()
	cfg.MaxWait = 1
	m, err := Simulate(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.MeanBatchSize > 1.5 {
		t.Errorf("light load should form singleton batches, got %.1f", m.MeanBatchSize)
	}
	if m.MeanQueueing > 2*cfg.MaxWait {
		t.Errorf("queueing %v exceeds 2x the batching window", m.MeanQueueing)
	}
}

// TestFullBatchLaunchesEarly: when the batch fills before the window
// closes, service starts immediately.
func TestFullBatchLaunchesEarly(t *testing.T) {
	gen, _ := trace.NewGenerator(trace.Code, 32, 64, 3)
	var reqs []Request
	for i := 0; i < 4; i++ {
		r := gen.Next()
		reqs = append(reqs, Request{Request: r, Arrival: units.Seconds(float64(i) * 0.001)})
	}
	cfg := baseConfig()
	cfg.MaxBatch = 4
	cfg.MaxWait = 1000 // absurd window; must not matter
	m, err := Simulate(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.MeanQueueing > 1 {
		t.Errorf("full batch should launch at once, queueing %v", m.MeanQueueing)
	}
}

func TestDeterministicSimulation(t *testing.T) {
	reqs := genReqs(t, 16, 5)
	a, err := Simulate(baseConfig(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(baseConfig(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("simulation must be deterministic")
	}
}

func TestContinuousBasics(t *testing.T) {
	reqs := genReqs(t, 24, 10)
	m, err := SimulateContinuous(baseConfig(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Completed != 24 {
		t.Errorf("completed %d/24", m.Completed)
	}
	if m.GeneratedTokens <= 0 || m.Throughput <= 0 {
		t.Errorf("tokens=%d tput=%v", m.GeneratedTokens, m.Throughput)
	}
	if !(m.P50 <= m.P95 && m.P95 <= m.P99) {
		t.Error("percentiles out of order")
	}
	// Every generated token is accounted for.
	want := 0
	for _, r := range reqs {
		want += r.OutputLen
	}
	if m.GeneratedTokens != want {
		t.Errorf("generated %d tokens, want %d", m.GeneratedTokens, want)
	}
}

func TestContinuousValidation(t *testing.T) {
	if _, err := SimulateContinuous(baseConfig(), nil); err == nil {
		t.Error("empty stream accepted")
	}
	bad := baseConfig()
	bad.MaxBatch = 0
	if _, err := SimulateContinuous(bad, genReqs(t, 2, 1)); err == nil {
		t.Error("MaxBatch=0 accepted")
	}
}

// TestContinuousBeatsStaticOnMixedLengths: with highly skewed output
// lengths, static batching holds short requests hostage to the longest
// member; continuous batching retires them as they finish, cutting tail
// latency without losing throughput.
func TestContinuousBeatsStaticOnMixedLengths(t *testing.T) {
	gen, _ := trace.NewGenerator(trace.Conversation, 32, 128, 4)
	var reqs []Request
	for i := 0; i < 16; i++ {
		r := gen.Next()
		if i%4 == 0 {
			r.OutputLen = 200 // a few long generations
		} else {
			r.OutputLen = 8 // many short ones
		}
		reqs = append(reqs, Request{Request: r, Arrival: units.Seconds(float64(i) * 0.01)})
	}
	cfg := baseConfig()
	cfg.MaxBatch = 16
	cfg.MaxWait = 1

	static, err := Simulate(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	cont, err := SimulateContinuous(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if cont.P50 >= static.P50 {
		t.Errorf("continuous p50 %v should beat static %v (short requests escape early)", cont.P50, static.P50)
	}
	if cont.Throughput < 0.7*static.Throughput {
		t.Errorf("continuous throughput %.1f collapsed vs static %.1f", cont.Throughput, static.Throughput)
	}
}

func TestContinuousDeterministic(t *testing.T) {
	reqs := genReqs(t, 12, 5)
	a, err := SimulateContinuous(baseConfig(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateContinuous(baseConfig(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("continuous simulation must be deterministic")
	}
}

// TestContinuousKVBudgetUnconstrained: a huge budget changes nothing.
func TestContinuousKVBudgetUnconstrained(t *testing.T) {
	reqs := genReqs(t, 12, 10)
	free, err := SimulateContinuous(baseConfig(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig()
	cfg.KVBudget = 10 * units.TB
	bounded, err := SimulateContinuous(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if free.Completed != bounded.Completed || bounded.Preemptions != 0 {
		t.Errorf("huge budget changed behaviour: %+v vs %+v", free, bounded)
	}
	if free.Makespan != bounded.Makespan {
		t.Errorf("makespans differ: %v vs %v", free.Makespan, bounded.Makespan)
	}
}

// TestContinuousKVBudgetPreempts: a pool that holds only a couple of
// sequences forces preemptions yet still completes every request.
func TestContinuousKVBudgetPreempts(t *testing.T) {
	gen, _ := trace.NewGenerator(trace.Code, 64, 128, 6)
	var reqs []Request
	for i := 0; i < 8; i++ {
		r := gen.Next()
		r.OutputLen = 64
		reqs = append(reqs, Request{Request: r, Arrival: 0})
	}
	cfg := baseConfig()
	cfg.MaxBatch = 8
	// Budget for roughly two sequences' worth of cache.
	cfg.KVBudget = model.OPT30B.KVBytes(2, 256)
	m, err := SimulateContinuous(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Completed != 8 {
		t.Errorf("completed %d/8 under preemption", m.Completed)
	}
	if m.Preemptions == 0 {
		t.Error("expected preemptions under a tight KV budget")
	}
}

// TestContinuousKVBudgetTooSmall: a budget that cannot hold one request
// errors out instead of looping.
func TestContinuousKVBudgetTooSmall(t *testing.T) {
	gen, _ := trace.NewGenerator(trace.Code, 512, 1024, 6)
	reqs := []Request{{Request: gen.Next(), Arrival: 0}}
	cfg := baseConfig()
	cfg.KVBudget = model.OPT30B.KVBytes(1, 8) // ~8 tokens of cache
	if _, err := SimulateContinuous(cfg, reqs); err == nil {
		t.Error("expected an error for an impossible budget")
	}
}

func TestChunkedBasics(t *testing.T) {
	reqs := genReqs(t, 16, 10)
	m, err := SimulateChunked(baseConfig(), reqs, 128)
	if err != nil {
		t.Fatal(err)
	}
	if m.Completed != 16 {
		t.Errorf("completed %d/16", m.Completed)
	}
	want := 0
	for _, r := range reqs {
		want += r.OutputLen
	}
	if m.GeneratedTokens != want {
		t.Errorf("generated %d, want %d", m.GeneratedTokens, want)
	}
	if _, err := SimulateChunked(baseConfig(), reqs, 0); err == nil {
		t.Error("chunk=0 accepted")
	}
	if _, err := SimulateChunked(baseConfig(), nil, 64); err == nil {
		t.Error("empty stream accepted")
	}
}

// TestChunkedPrefillCostsInOffloadedRegime captures a finding of this
// reproduction: Sarathi-style chunked prefill, designed for
// resident-weight serving, *hurts* an offloaded deployment — every chunk
// re-streams the full parameter set that a whole-prompt prefill would
// have amortized in one pass, so the short requests behind a giant
// prompt finish later, not earlier.
func TestChunkedPrefillCostsInOffloadedRegime(t *testing.T) {
	gen, _ := trace.NewGenerator(trace.Code, 32, 64, 2)
	var reqs []Request
	// One massive prompt first...
	big := gen.Next()
	big.InputLen = 1800
	big.OutputLen = 16
	reqs = append(reqs, Request{Request: big, Arrival: 0})
	// ...then short interactive requests.
	for i := 0; i < 6; i++ {
		r := gen.Next()
		r.InputLen = 32
		r.OutputLen = 8
		reqs = append(reqs, Request{Request: r, Arrival: units.Seconds(0.001 * float64(i+1))})
	}
	cfg := baseConfig()
	cfg.MaxBatch = 8

	whole, err := SimulateContinuous(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	chunked, err := SimulateChunked(cfg, reqs, 256)
	if err != nil {
		t.Fatal(err)
	}
	if chunked.Completed != whole.Completed {
		t.Fatalf("completed %d vs %d", chunked.Completed, whole.Completed)
	}
	// The offloaded regime inverts Sarathi's result: chunking re-streams
	// parameters once per chunk, so whole-prompt prefill wins.
	if chunked.P50 <= whole.P50 {
		t.Errorf("expected chunked p50 %v to trail whole-prompt %v in the offloaded regime", chunked.P50, whole.P50)
	}
	if chunked.P50 > 4*whole.P50 {
		t.Errorf("chunked overhead implausibly large: %v vs %v", chunked.P50, whole.P50)
	}
}

func TestChunkedDeterministic(t *testing.T) {
	reqs := genReqs(t, 10, 5)
	a, err := SimulateChunked(baseConfig(), reqs, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateChunked(baseConfig(), reqs, 64)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("chunked simulation must be deterministic")
	}
}
