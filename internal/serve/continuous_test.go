package serve

import (
	"testing"

	"github.com/lia-sim/lia/internal/kvpage"
	"github.com/lia-sim/lia/internal/units"
)

// testPool builds a pool of exactly `blocks` blocks of 4 token slots each
// (1 byte per token keeps the budget arithmetic trivial).
func testPool(t *testing.T, blocks int) *kvpage.Manager {
	t.Helper()
	pool, err := kvpage.NewManager(units.Bytes(blocks*4), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pool.TotalBlocks() != blocks {
		t.Fatalf("pool sized %d blocks, want %d", pool.TotalBlocks(), blocks)
	}
	return pool
}

// admitSeq admits a sequence into the pool and returns its running-batch
// entry.
func admitSeq(t *testing.T, pool *kvpage.Manager, id, tokens int) sequence {
	t.Helper()
	if err := pool.Admit(id, tokens); err != nil {
		t.Fatal(err)
	}
	return sequence{id: id, req: Request{}, context: tokens}
}

// checkPoolInvariant asserts the allocator's books balance: blocks held
// by the kept sequences plus the free list must partition the pool.
func checkPoolInvariant(t *testing.T, pool *kvpage.Manager, kept []sequence) {
	t.Helper()
	if pool.Live() != len(kept) {
		t.Errorf("pool holds %d live sequences, batch has %d", pool.Live(), len(kept))
	}
	used := 0
	for _, s := range kept {
		// blocksFor(tokens) with 4-token blocks.
		used += (pool.Tokens(s.id) + 3) / 4
	}
	if got := pool.TotalBlocks() - pool.FreeBlocks(); got != used {
		t.Errorf("%d blocks allocated, kept sequences account for %d — blocks leaked", got, used)
	}
}

// TestExtendRunningSelfPreemption: the regression the extraction guards.
// When the youngest sequence is itself the one that cannot extend, the
// preemption loop must evict it and stop — the old inline loop's
// `i >= len(running)` guards kept it from walking past the shrunken
// batch or re-extending the evicted victim.
func TestExtendRunningSelfPreemption(t *testing.T) {
	pool := testPool(t, 3)
	running := []sequence{
		admitSeq(t, pool, 0, 3), // 1 block; extending to 4 tokens needs no new block
		admitSeq(t, pool, 1, 3), // 1 block, likewise
		admitSeq(t, pool, 2, 4), // 1 full block; extending demands a new one
	}
	if pool.FreeBlocks() != 0 {
		t.Fatalf("setup: want a full pool, %d blocks free", pool.FreeBlocks())
	}
	kept, evicted, err := extendRunning(pool, running, units.Bytes(12))
	if err != nil {
		t.Fatal(err)
	}
	// Sequence 2 was both the youngest and the one out of room: it must
	// be the (only) eviction, and 0 and 1 must survive extended.
	if len(kept) != 2 || kept[0].id != 0 || kept[1].id != 1 {
		t.Fatalf("kept %+v, want sequences 0 and 1", kept)
	}
	if len(evicted) != 1 {
		t.Fatalf("evicted %d sequences, want 1 (the youngest)", len(evicted))
	}
	if pool.Tokens(0) != 4 || pool.Tokens(1) != 4 {
		t.Errorf("survivors hold %d and %d tokens, want 4 and 4", pool.Tokens(0), pool.Tokens(1))
	}
	checkPoolInvariant(t, pool, kept)
}

// TestExtendRunningPreemptsYoungestForOldest: when an older sequence
// needs a block, the youngest is the victim and the older retries until
// its extension fits.
func TestExtendRunningPreemptsYoungestForOldest(t *testing.T) {
	pool := testPool(t, 4)
	running := []sequence{
		admitSeq(t, pool, 0, 4), // full block: extension allocates
		admitSeq(t, pool, 1, 4), // full block: extension allocates
		admitSeq(t, pool, 2, 8), // 2 blocks — the eviction candidate
	}
	if pool.FreeBlocks() != 0 {
		t.Fatalf("setup: want a full pool, %d blocks free", pool.FreeBlocks())
	}
	kept, evicted, err := extendRunning(pool, running, units.Bytes(16))
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 2 || kept[0].id != 0 || kept[1].id != 1 {
		t.Fatalf("kept %+v, want sequences 0 and 1", kept)
	}
	if len(evicted) != 1 {
		t.Fatalf("evicted %d, want 1", len(evicted))
	}
	if pool.Tokens(0) != 5 || pool.Tokens(1) != 5 {
		t.Errorf("survivors hold %d and %d tokens, want 5 and 5", pool.Tokens(0), pool.Tokens(1))
	}
	checkPoolInvariant(t, pool, kept)
}

// TestExtendRunningSoleSequenceErrors: preempting the only member of the
// batch would make no progress, so a one-sequence batch that cannot
// extend is a hard error.
func TestExtendRunningSoleSequenceErrors(t *testing.T) {
	pool := testPool(t, 1)
	running := []sequence{admitSeq(t, pool, 0, 4)}
	if _, _, err := extendRunning(pool, running, units.Bytes(4)); err == nil {
		t.Fatal("expected an error extending a sole sequence in a full pool")
	}
}

// TestExtendRunningNoPressure: with free blocks available nothing is
// evicted and every sequence grows by one token.
func TestExtendRunningNoPressure(t *testing.T) {
	pool := testPool(t, 8)
	running := []sequence{
		admitSeq(t, pool, 0, 4),
		admitSeq(t, pool, 1, 2),
	}
	kept, evicted, err := extendRunning(pool, running, units.Bytes(32))
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 2 || len(evicted) != 0 {
		t.Fatalf("kept %d evicted %d, want 2 and 0", len(kept), len(evicted))
	}
	if pool.Tokens(0) != 5 || pool.Tokens(1) != 3 {
		t.Errorf("tokens %d and %d, want 5 and 3", pool.Tokens(0), pool.Tokens(1))
	}
	checkPoolInvariant(t, pool, kept)
}
