package serve

import (
	"fmt"
	"sort"

	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/exec"
	"github.com/lia-sim/lia/internal/kvpage"
	"github.com/lia-sim/lia/internal/memplan"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/units"
)

// SimulateContinuous runs an iteration-level (Orca-style continuous
// batching) scheduler over the request stream: at every decode iteration
// the running batch admits newly-arrived requests (after a batched
// prefill) and retires finished ones immediately, instead of holding the
// whole batch until its longest member completes. Same Config and
// Metrics as Simulate, so the two disciplines compare directly.
//
// The per-iteration cost comes from the same execution back-end the
// engine uses (policy re-optimized per batch size, Optimization-1
// pinning, Optimization-2 overlap), evaluated at the running batch's
// mean context length.
func SimulateContinuous(cfg Config, reqs []Request) (Metrics, error) {
	if err := cfg.Validate(); err != nil {
		return Metrics{}, err
	}
	if len(reqs) == 0 {
		return Metrics{}, fmt.Errorf("serve: no requests")
	}
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Arrival < reqs[i-1].Arrival {
			return Metrics{}, fmt.Errorf("serve: requests not sorted by arrival")
		}
	}

	env := core.NewEnvWithPlacement(cfg.System, cfg.Model, cfg.Placement)
	gpuPlan := memplan.PlanLIAGPU(cfg.System.GPU, cfg.Model, cfg.MaxBatch, cfg.Model.MaxSeqLen)
	opt := core.Options{KVOnGPU: gpuPlan.KVOnGPU}

	basePlan := exec.Plan{
		Env:          env,
		Opt:          opt,
		Layers:       cfg.Model.Layers,
		PinnedLayers: gpuPlan.PinnedLayers,
		Overlap:      true,
		MiniBatches:  1,
	}

	// Per-iteration decode costs are cached by (batch size, context
	// bucket) — policies and costs change slowly along both axes.
	type costKey struct{ b, lBucket int }
	decodeCost := make(map[costKey]units.Seconds)
	decodePolicy := make(map[int]core.Policy)
	stepCost := func(b, l int) (units.Seconds, error) {
		const bucket = 64
		key := costKey{b, l / bucket}
		if c, ok := decodeCost[key]; ok {
			return c, nil
		}
		pol, ok := decodePolicy[b]
		if !ok {
			pol, _ = core.OptimizeOpts(env, model.Decode, b, l, opt)
			decodePolicy[b] = pol
		}
		p := basePlan
		p.Policy = pol
		res, err := p.RunStage(model.Decode, b, l)
		if err != nil {
			return 0, err
		}
		decodeCost[key] = res.Latency
		return res.Latency, nil
	}
	prefillCost := func(b, l int) (units.Seconds, error) {
		pol, _ := core.OptimizeOpts(env, model.Prefill, b, l, opt)
		p := basePlan
		p.Policy = pol
		if b > 1 {
			p.MiniBatches = 2
		}
		res, err := p.RunStage(model.Prefill, b, l)
		if err != nil {
			return 0, err
		}
		return res.Latency, nil
	}

	// Optional paged KV-cache pool (vLLM-style): admissions and per-token
	// extensions allocate blocks; exhaustion preempts the youngest
	// sequence back to the waiting queue for recomputation.
	var pool *kvpage.Manager
	if cfg.KVBudget > 0 {
		blockTokens := cfg.KVBlockTokens
		if blockTokens <= 0 {
			blockTokens = 16
		}
		var err error
		pool, err = kvpage.ForModel(cfg.KVBudget, blockTokens, cfg.Model)
		if err != nil {
			return Metrics{}, err
		}
	}

	type active struct {
		id        int
		req       Request
		context   int // tokens in the KV cache
		remaining int // output tokens still to produce
		started   units.Seconds
	}
	var (
		m         Metrics
		clock     units.Seconds
		running   []active
		requeued  []Request // preempted work, served before new arrivals
		next      int
		latencies []units.Seconds
		queueing  []units.Seconds
		nextID    int
	)

	// preemptYoungest evicts the most recently admitted sequence, freeing
	// its blocks and requeueing its request for full recomputation.
	preemptYoungest := func() error {
		if len(running) <= 1 {
			return fmt.Errorf("serve: KV budget %v cannot hold even one sequence", cfg.KVBudget)
		}
		last := running[len(running)-1]
		running = running[:len(running)-1]
		if err := pool.Release(last.id); err != nil {
			return err
		}
		requeued = append(requeued, last.req)
		m.Preemptions++
		return nil
	}

	for next < len(reqs) || len(running) > 0 || len(requeued) > 0 {
		// Admit requeued work first, then arrived requests, while the
		// batch and (when bounded) the KV pool both have room. Pool blocks
		// are reserved eagerly so one admission round cannot over-commit.
		type admission struct {
			id  int
			req Request
		}
		var admit []admission
		tryReserve := func(r Request) bool {
			if pool != nil {
				if !pool.CanAdmit(r.InputLen) {
					return false
				}
				if err := pool.Admit(nextID, r.InputLen); err != nil {
					return false
				}
			}
			admit = append(admit, admission{id: nextID, req: r})
			nextID++
			return true
		}
		for len(requeued) > 0 && len(running)+len(admit) < cfg.MaxBatch && tryReserve(requeued[0]) {
			requeued = requeued[1:]
		}
		for next < len(reqs) && len(running)+len(admit) < cfg.MaxBatch && reqs[next].Arrival <= clock && tryReserve(reqs[next]) {
			next++
		}
		if len(admit) == 0 && len(running) == 0 {
			if len(requeued) > 0 || next >= len(reqs) {
				// Nothing can be admitted and nothing is running: the
				// pool cannot hold the next piece of work at all.
				return Metrics{}, fmt.Errorf("serve: KV budget %v cannot hold the next request", cfg.KVBudget)
			}
			// Idle: jump to the next arrival.
			clock = reqs[next].Arrival
			continue
		}
		if len(admit) > 0 {
			maxIn := 1
			for _, a := range admit {
				if a.req.InputLen > maxIn {
					maxIn = a.req.InputLen
				}
			}
			c, err := prefillCost(len(admit), maxIn)
			if err != nil {
				return Metrics{}, err
			}
			clock += c
			m.Batches++ // count prefill launches as batches formed
			m.MeanBatchSize += float64(len(admit))
			for _, a := range admit {
				running = append(running, active{id: a.id, req: a.req, context: a.req.InputLen, remaining: a.req.OutputLen, started: clock})
				queueing = append(queueing, clock-a.req.Arrival)
			}
			continue // check for more arrivals before decoding
		}

		// Grow every running sequence's cache by one token, preempting
		// the youngest until the allocations fit.
		if pool != nil {
			for i := 0; i < len(running); i++ {
				for pool.Extend(running[i].id) != nil {
					if err := preemptYoungest(); err != nil {
						return Metrics{}, err
					}
					if i >= len(running) {
						break
					}
				}
				if i >= len(running) {
					break
				}
			}
		}

		// One decode iteration across the running batch.
		var ctxSum int
		for _, a := range running {
			ctxSum += a.context
		}
		c, err := stepCost(len(running), ctxSum/len(running))
		if err != nil {
			return Metrics{}, err
		}
		clock += c
		kept := running[:0]
		for _, a := range running {
			a.context++
			a.remaining--
			m.GeneratedTokens++
			if a.remaining <= 0 {
				latencies = append(latencies, clock-a.req.Arrival)
				if pool != nil {
					if err := pool.Release(a.id); err != nil {
						return Metrics{}, err
					}
				}
			} else {
				kept = append(kept, a)
			}
		}
		running = kept
		if clock > m.Makespan {
			m.Makespan = clock
		}
	}

	m.Completed = len(latencies)
	if m.Batches > 0 {
		m.MeanBatchSize /= float64(m.Batches)
	}
	if m.Makespan > 0 {
		m.Throughput = float64(m.GeneratedTokens) / float64(m.Makespan)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	var sum, qsum float64
	for _, l := range latencies {
		sum += float64(l)
	}
	for _, q := range queueing {
		qsum += float64(q)
	}
	if len(latencies) > 0 {
		m.Mean = units.Seconds(sum / float64(len(latencies)))
	}
	if len(queueing) > 0 {
		m.MeanQueueing = units.Seconds(qsum / float64(len(queueing)))
	}
	m.P50 = percentile(latencies, 0.50)
	m.P95 = percentile(latencies, 0.95)
	m.P99 = percentile(latencies, 0.99)
	return m, nil
}
