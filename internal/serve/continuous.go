package serve

import (
	"fmt"
	"sort"

	"github.com/lia-sim/lia/internal/batchpolicy"
	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/exec"
	"github.com/lia-sim/lia/internal/kvpage"
	"github.com/lia-sim/lia/internal/memplan"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/units"
)

// SimulateContinuous runs an iteration-level (Orca-style continuous
// batching) scheduler over the request stream: at every decode iteration
// the running batch admits newly-arrived requests (after a batched
// prefill) and retires finished ones immediately, instead of holding the
// whole batch until its longest member completes. Same Config and
// Metrics as Simulate, so the two disciplines compare directly.
//
// Every scheduling decision — FIFO admission with eager KV-block
// reservation, youngest-first preemption, immediate retirement — is made
// by the batchpolicy package, the exact same code the live serving
// gateway (internal/gateway) runs; the differential test in that package
// pins the two to identical admission/preemption/completion order.
//
// The per-iteration cost comes from the same execution back-end the
// engine uses (policy re-optimized per batch size, Optimization-1
// pinning, Optimization-2 overlap), evaluated at the running batch's
// mean context length — unless Config.StepCosts injects deterministic
// costs (the differential test's fake engine).
func SimulateContinuous(cfg Config, reqs []Request) (Metrics, error) {
	if err := cfg.Validate(); err != nil {
		return Metrics{}, err
	}
	if len(reqs) == 0 {
		return Metrics{}, fmt.Errorf("serve: no requests")
	}
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Arrival < reqs[i-1].Arrival {
			return Metrics{}, fmt.Errorf("serve: requests not sorted by arrival")
		}
	}

	stepCost, prefillCost := cfg.iterationCosts()

	// Optional paged KV-cache pool (vLLM-style): admissions and per-token
	// extensions allocate blocks; exhaustion preempts the youngest
	// sequence back to the waiting queue for recomputation.
	var pool *kvpage.Manager
	if cfg.KVBudget > 0 {
		blockTokens := cfg.KVBlockTokens
		if blockTokens <= 0 {
			blockTokens = 16
		}
		var err error
		pool, err = kvpage.ForModel(cfg.KVBudget, blockTokens, cfg.Model)
		if err != nil {
			return Metrics{}, err
		}
	}
	sched, err := batchpolicy.NewScheduler(cfg.MaxBatch, pool)
	if err != nil {
		return Metrics{}, err
	}
	sched.OnEvent = cfg.OnEvent

	var (
		m         Metrics
		clock     units.Seconds
		next      int
		latencies []units.Seconds
		queueing  []units.Seconds
		costErr   error
	)
	hooks := batchpolicy.Hooks{
		// Admissible work: the arrived prefix of the trace (requeued
		// preemptions live inside the scheduler and take priority there).
		Waiting: func() []batchpolicy.Item {
			var waiting []batchpolicy.Item
			for i := next; i < len(reqs) && reqs[i].Arrival <= clock; i++ {
				waiting = append(waiting, batchpolicy.Item{
					Ref:       i,
					PromptLen: reqs[i].InputLen,
					OutputLen: reqs[i].OutputLen,
				})
			}
			return waiting
		},
		Consumed: func(n int) { next += n },
		Prefill: func(admitted []batchpolicy.Seq) error {
			maxIn := 1
			for _, a := range admitted {
				if a.Item.PromptLen > maxIn {
					maxIn = a.Item.PromptLen
				}
			}
			c, err := prefillCost(len(admitted), maxIn)
			if err != nil {
				costErr = err
				return err
			}
			clock += c
			m.Batches++ // each prefill launch is one executed batch
			m.MeanBatchSize += float64(len(admitted))
			for _, a := range admitted {
				queueing = append(queueing, clock-reqs[a.Item.Ref].Arrival)
			}
			return nil
		},
		Step: func(running []batchpolicy.Seq) error {
			var ctxSum int
			for _, a := range running {
				ctxSum += a.Context
			}
			c, err := stepCost(len(running), ctxSum/len(running))
			if err != nil {
				costErr = err
				return err
			}
			clock += c
			m.Batches++ // each decode iteration is one executed batch
			m.MeanBatchSize += float64(len(running))
			m.GeneratedTokens += len(running)
			return nil
		},
		Evicted: func(evicted []batchpolicy.Seq) {
			m.Preemptions += len(evicted)
		},
		Finished: func(finished []batchpolicy.Seq) {
			for _, f := range finished {
				latencies = append(latencies, clock-reqs[f.Item.Ref].Arrival)
			}
		},
	}

	for next < len(reqs) || sched.Busy() {
		progressed, err := batchpolicy.Round(sched, hooks)
		if err != nil {
			if costErr != nil {
				return Metrics{}, costErr
			}
			return Metrics{}, fmt.Errorf("serve: KV budget %v: %w", cfg.KVBudget, err)
		}
		if !progressed {
			// Nothing was admitted and nothing is running. If the head of
			// the line (preempted work, or an arrival that is already
			// here) still cannot be admitted into an otherwise-empty
			// batch, it never will be — erroring beats the seed
			// implementation's silent infinite loop on an oversized
			// mid-trace request. Otherwise the server is idle: jump to
			// the next arrival.
			if sched.RequeuedLen() > 0 || next >= len(reqs) || reqs[next].Arrival <= clock {
				return Metrics{}, fmt.Errorf("serve: KV budget %v cannot hold the next request", cfg.KVBudget)
			}
			clock = reqs[next].Arrival
			continue
		}
		if clock > m.Makespan {
			m.Makespan = clock
		}
	}

	// Pool-accounting invariant: every admitted sequence completed and
	// released its blocks, so the pool must be back to fully free.
	if pool != nil && (pool.Live() != 0 || pool.FreeBlocks() != pool.TotalBlocks()) {
		return Metrics{}, fmt.Errorf("serve: internal error: %d sequences / %d blocks leaked from the KV pool",
			pool.Live(), pool.TotalBlocks()-pool.FreeBlocks())
	}

	m.Completed = len(latencies)
	if m.Batches > 0 {
		m.MeanBatchSize /= float64(m.Batches)
	}
	if m.Makespan > 0 {
		m.Throughput = float64(m.GeneratedTokens) / float64(m.Makespan)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	var sum, qsum float64
	for _, l := range latencies {
		sum += float64(l)
	}
	for _, q := range queueing {
		qsum += float64(q)
	}
	if len(latencies) > 0 {
		m.Mean = units.Seconds(sum / float64(len(latencies)))
	}
	if len(queueing) > 0 {
		m.MeanQueueing = units.Seconds(qsum / float64(len(queueing)))
	}
	m.P50 = percentile(latencies, 0.50)
	m.P95 = percentile(latencies, 0.95)
	m.P99 = percentile(latencies, 0.99)
	return m, nil
}

// iterationCosts returns the decode and prefill cost functions for the
// iteration-level simulators: the injected StepCosts when present (the
// differential test's deterministic fake engine), else the analytic
// execution back-end through the process-wide step cache (stepcost.go).
func (c Config) iterationCosts() (step, prefill func(b, l int) (units.Seconds, error)) {
	if c.StepCosts != nil {
		return c.StepCosts.Decode, c.StepCosts.Prefill
	}
	env := core.NewEnvWithPlacement(c.System, c.Model, c.Placement)
	gpuPlan := memplan.PlanLIAGPU(c.System.GPU, c.Model, c.MaxBatch, c.Model.MaxSeqLen)
	opt := core.Options{KVOnGPU: gpuPlan.KVOnGPU}
	basePlan := exec.Plan{
		Env:          env,
		Opt:          opt,
		Layers:       c.Model.Layers,
		PinnedLayers: gpuPlan.PinnedLayers,
		Overlap:      true,
		MiniBatches:  1,
	}
	step = func(b, l int) (units.Seconds, error) {
		return decodeStepCost(basePlan, b, l)
	}
	prefill = func(b, l int) (units.Seconds, error) {
		pol, _ := core.OptimizeOptsCached(env, model.Prefill, b, l, opt)
		p := basePlan
		p.Policy = pol
		if b > 1 {
			p.MiniBatches = 2
		}
		return stageCost(p, model.Prefill, b, l)
	}
	return step, prefill
}
