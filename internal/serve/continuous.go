package serve

import (
	"fmt"
	"sort"

	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/exec"
	"github.com/lia-sim/lia/internal/kvpage"
	"github.com/lia-sim/lia/internal/memplan"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/units"
)

// sequence is one admitted request's in-flight state in the continuous
// scheduler. Sequences append to the running batch in admission order,
// so the slice's last element is always the youngest.
type sequence struct {
	id        int
	req       Request
	context   int // tokens in the KV cache
	remaining int // output tokens still to produce
	started   units.Seconds
}

// extendRunning grows every running sequence's KV cache by one token
// slot ahead of a decode iteration. When the pool cannot supply a block,
// the youngest sequence is preempted — its blocks released and its
// request returned in evicted for full recomputation — and the
// allocation retries, repeating until the extension fits. If the victim
// is the very sequence being extended (it was both the youngest and the
// one that failed), extension stops there: everything before it already
// holds its new block. Errors when even a one-sequence batch cannot
// extend, since preempting the only member would make no progress.
func extendRunning(pool *kvpage.Manager, running []sequence, budget units.Bytes) (kept []sequence, evicted []Request, err error) {
	for i := 0; i < len(running); i++ {
		for pool.Extend(running[i].id) != nil {
			if len(running) <= 1 {
				return nil, nil, fmt.Errorf("serve: KV budget %v cannot hold even one sequence", budget)
			}
			last := running[len(running)-1]
			running = running[:len(running)-1]
			if err := pool.Release(last.id); err != nil {
				return nil, nil, err
			}
			evicted = append(evicted, last.req)
			if i >= len(running) {
				return running, evicted, nil
			}
		}
	}
	return running, evicted, nil
}

// SimulateContinuous runs an iteration-level (Orca-style continuous
// batching) scheduler over the request stream: at every decode iteration
// the running batch admits newly-arrived requests (after a batched
// prefill) and retires finished ones immediately, instead of holding the
// whole batch until its longest member completes. Same Config and
// Metrics as Simulate, so the two disciplines compare directly.
//
// The per-iteration cost comes from the same execution back-end the
// engine uses (policy re-optimized per batch size, Optimization-1
// pinning, Optimization-2 overlap), evaluated at the running batch's
// mean context length.
func SimulateContinuous(cfg Config, reqs []Request) (Metrics, error) {
	if err := cfg.Validate(); err != nil {
		return Metrics{}, err
	}
	if len(reqs) == 0 {
		return Metrics{}, fmt.Errorf("serve: no requests")
	}
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Arrival < reqs[i-1].Arrival {
			return Metrics{}, fmt.Errorf("serve: requests not sorted by arrival")
		}
	}

	env := core.NewEnvWithPlacement(cfg.System, cfg.Model, cfg.Placement)
	gpuPlan := memplan.PlanLIAGPU(cfg.System.GPU, cfg.Model, cfg.MaxBatch, cfg.Model.MaxSeqLen)
	opt := core.Options{KVOnGPU: gpuPlan.KVOnGPU}

	basePlan := exec.Plan{
		Env:          env,
		Opt:          opt,
		Layers:       cfg.Model.Layers,
		PinnedLayers: gpuPlan.PinnedLayers,
		Overlap:      true,
		MiniBatches:  1,
	}

	// Per-iteration costs come from the process-wide step cache
	// (stepcost.go): decode policies and costs are shared by context
	// bucket, prefill costs by exact shape. Both are pure functions of
	// the plan and shape, so runs of the same configuration — including
	// concurrent ones on the runner pool — share the work.
	stepCost := func(b, l int) (units.Seconds, error) {
		return decodeStepCost(basePlan, b, l)
	}
	prefillCost := func(b, l int) (units.Seconds, error) {
		pol, _ := core.OptimizeOptsCached(env, model.Prefill, b, l, opt)
		p := basePlan
		p.Policy = pol
		if b > 1 {
			p.MiniBatches = 2
		}
		return stageCost(p, model.Prefill, b, l)
	}

	// Optional paged KV-cache pool (vLLM-style): admissions and per-token
	// extensions allocate blocks; exhaustion preempts the youngest
	// sequence back to the waiting queue for recomputation.
	var pool *kvpage.Manager
	if cfg.KVBudget > 0 {
		blockTokens := cfg.KVBlockTokens
		if blockTokens <= 0 {
			blockTokens = 16
		}
		var err error
		pool, err = kvpage.ForModel(cfg.KVBudget, blockTokens, cfg.Model)
		if err != nil {
			return Metrics{}, err
		}
	}

	var (
		m         Metrics
		clock     units.Seconds
		running   []sequence
		requeued  []Request // preempted work, served before new arrivals
		next      int
		latencies []units.Seconds
		queueing  []units.Seconds
		nextID    int
	)

	for next < len(reqs) || len(running) > 0 || len(requeued) > 0 {
		// Admit requeued work first, then arrived requests, while the
		// batch and (when bounded) the KV pool both have room. Pool blocks
		// are reserved eagerly so one admission round cannot over-commit.
		type admission struct {
			id  int
			req Request
		}
		var admit []admission
		tryReserve := func(r Request) bool {
			if pool != nil {
				if !pool.CanAdmit(r.InputLen) {
					return false
				}
				if err := pool.Admit(nextID, r.InputLen); err != nil {
					return false
				}
			}
			admit = append(admit, admission{id: nextID, req: r})
			nextID++
			return true
		}
		for len(requeued) > 0 && len(running)+len(admit) < cfg.MaxBatch && tryReserve(requeued[0]) {
			requeued = requeued[1:]
		}
		for next < len(reqs) && len(running)+len(admit) < cfg.MaxBatch && reqs[next].Arrival <= clock && tryReserve(reqs[next]) {
			next++
		}
		if len(admit) == 0 && len(running) == 0 {
			if len(requeued) > 0 || next >= len(reqs) {
				// Nothing can be admitted and nothing is running: the
				// pool cannot hold the next piece of work at all.
				return Metrics{}, fmt.Errorf("serve: KV budget %v cannot hold the next request", cfg.KVBudget)
			}
			// Idle: jump to the next arrival.
			clock = reqs[next].Arrival
			continue
		}
		if len(admit) > 0 {
			maxIn := 1
			for _, a := range admit {
				if a.req.InputLen > maxIn {
					maxIn = a.req.InputLen
				}
			}
			c, err := prefillCost(len(admit), maxIn)
			if err != nil {
				return Metrics{}, err
			}
			clock += c
			m.Batches++ // each prefill launch is one executed batch
			m.MeanBatchSize += float64(len(admit))
			for _, a := range admit {
				running = append(running, sequence{id: a.id, req: a.req, context: a.req.InputLen, remaining: a.req.OutputLen, started: clock})
				queueing = append(queueing, clock-a.req.Arrival)
			}
			continue // check for more arrivals before decoding
		}

		if pool != nil {
			kept, evicted, err := extendRunning(pool, running, cfg.KVBudget)
			if err != nil {
				return Metrics{}, err
			}
			running = kept
			requeued = append(requeued, evicted...)
			m.Preemptions += len(evicted)
		}

		// One decode iteration across the running batch.
		var ctxSum int
		for _, a := range running {
			ctxSum += a.context
		}
		c, err := stepCost(len(running), ctxSum/len(running))
		if err != nil {
			return Metrics{}, err
		}
		clock += c
		m.Batches++ // each decode iteration is one executed batch
		m.MeanBatchSize += float64(len(running))
		kept := running[:0]
		for _, a := range running {
			a.context++
			a.remaining--
			m.GeneratedTokens++
			if a.remaining <= 0 {
				latencies = append(latencies, clock-a.req.Arrival)
				if pool != nil {
					if err := pool.Release(a.id); err != nil {
						return Metrics{}, err
					}
				}
			} else {
				kept = append(kept, a)
			}
		}
		running = kept
		if clock > m.Makespan {
			m.Makespan = clock
		}
	}

	// Pool-accounting invariant: every admitted sequence completed and
	// released its blocks, so the pool must be back to fully free.
	if pool != nil && (pool.Live() != 0 || pool.FreeBlocks() != pool.TotalBlocks()) {
		return Metrics{}, fmt.Errorf("serve: internal error: %d sequences / %d blocks leaked from the KV pool",
			pool.Live(), pool.TotalBlocks()-pool.FreeBlocks())
	}

	m.Completed = len(latencies)
	if m.Batches > 0 {
		m.MeanBatchSize /= float64(m.Batches)
	}
	if m.Makespan > 0 {
		m.Throughput = float64(m.GeneratedTokens) / float64(m.Makespan)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	var sum, qsum float64
	for _, l := range latencies {
		sum += float64(l)
	}
	for _, q := range queueing {
		qsum += float64(q)
	}
	if len(latencies) > 0 {
		m.Mean = units.Seconds(sum / float64(len(latencies)))
	}
	if len(queueing) > 0 {
		m.MeanQueueing = units.Seconds(qsum / float64(len(queueing)))
	}
	m.P50 = percentile(latencies, 0.50)
	m.P95 = percentile(latencies, 0.95)
	m.P99 = percentile(latencies, 0.99)
	return m, nil
}
