package serve

import (
	"math"
	"testing"
	"time"

	"github.com/lia-sim/lia/internal/trace"
	"github.com/lia-sim/lia/internal/units"
)

// TestPercentile pins the nearest-rank definition the Metrics report
// uses: the p-quantile of n sorted samples is element ceil(p·n), with
// out-of-range ranks clamped to the ends.
func TestPercentile(t *testing.T) {
	ten := make([]units.Seconds, 10)
	for i := range ten {
		ten[i] = units.Seconds(i + 1)
	}
	cases := []struct {
		name   string
		sorted []units.Seconds
		p      float64
		want   units.Seconds
	}{
		{"empty", nil, 0.5, 0},
		{"single-p50", []units.Seconds{7}, 0.5, 7},
		{"single-p99", []units.Seconds{7}, 0.99, 7},
		{"ten-p0", ten, 0, 1},
		{"ten-p10", ten, 0.10, 1},
		{"ten-p50", ten, 0.50, 5},
		{"ten-p95", ten, 0.95, 10},
		{"ten-p99", ten, 0.99, 10},
		{"ten-p100", ten, 1.0, 10},
		{"four-p25", []units.Seconds{1, 2, 3, 4}, 0.25, 1},
		{"four-p50", []units.Seconds{1, 2, 3, 4}, 0.50, 2},
		{"four-p75", []units.Seconds{1, 2, 3, 4}, 0.75, 3},
		{"overshoot-clamps", ten, 1.5, 10},
	}
	for _, c := range cases {
		if got := percentile(c.sorted, c.p); got != c.want {
			t.Errorf("%s: percentile(%v, %v) = %v, want %v", c.name, c.sorted, c.p, got, c.want)
		}
	}
}

// TestValidateRejectsDegenerateConfigs: the fuzz target
// FuzzServeConfigValidate relies on Validate catching every shape that
// would make the simulators misbehave rather than error.
func TestValidateRejectsDegenerateConfigs(t *testing.T) {
	ok := baseConfig()
	if err := ok.Validate(); err != nil {
		t.Fatalf("base config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero-batch", func(c *Config) { c.MaxBatch = 0 }},
		{"negative-batch", func(c *Config) { c.MaxBatch = -3 }},
		{"negative-wait", func(c *Config) { c.MaxWait = -1 }},
		{"nan-wait", func(c *Config) { c.MaxWait = units.Seconds(math.NaN()) }},
		{"negative-kv-budget", func(c *Config) { c.KVBudget = -1 }},
		{"negative-block-tokens", func(c *Config) { c.KVBudget = 1 << 20; c.KVBlockTokens = -16 }},
	}
	for _, c := range cases {
		cfg := baseConfig()
		c.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// fakeCosts is the deterministic stand-in engine the differential test
// also uses: prefill charges batch·maxIn milliseconds, decode charges
// (batch+meanCtx) milliseconds. Whole-millisecond values keep every
// clock arithmetic step exact in float64.
func fakeCosts() *StepCosts {
	return &StepCosts{
		Prefill: func(b, maxIn int) (units.Seconds, error) { return units.Seconds(b*maxIn) * 1e-3, nil },
		Decode:  func(b, meanCtx int) (units.Seconds, error) { return units.Seconds(b+meanCtx) * 1e-3, nil },
	}
}

// TestContinuousMetricsExact drives SimulateContinuous with injected
// costs through a scenario small enough to compute by hand, pinning the
// whole Metrics aggregation — batch accounting, token counting,
// latency/queueing means and the percentile report — to exact values.
func TestContinuousMetricsExact(t *testing.T) {
	cfg := Config{MaxBatch: 8, StepCosts: &StepCosts{
		Prefill: func(b, maxIn int) (units.Seconds, error) { return units.Seconds(b * maxIn), nil },
		Decode:  func(b, meanCtx int) (units.Seconds, error) { return units.Seconds(b + meanCtx), nil },
	}}
	reqs := []Request{
		{Request: trace.Request{InputLen: 2, OutputLen: 2}, Arrival: 0},
		{Request: trace.Request{InputLen: 3, OutputLen: 1}, Arrival: 0},
	}
	m, err := SimulateContinuous(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	// Round 1: both admitted, prefill(2,3)=6 → clock 6, queueing 6 and 6.
	// Round 2: decode(2,(2+3)/2)=4 → clock 10; request 1 retires (lat 10).
	// Round 3: decode(1,3)=4 → clock 14; request 0 retires (lat 14).
	want := Metrics{
		Completed:       2,
		Makespan:        14,
		GeneratedTokens: 3,
		Throughput:      3.0 / 14.0,
		Mean:            12,
		P50:             10,
		P95:             14,
		P99:             14,
		MeanQueueing:    6,
		Batches:         3,
		MeanBatchSize:   5.0 / 3.0,
	}
	if m != want {
		t.Errorf("metrics mismatch:\n got %+v\nwant %+v", m, want)
	}
}

// TestContinuousOversizedMidTraceErrors is the regression test for the
// idle-branch hang: a request that can never fit a pool that does hold
// some blocks used to spin the simulator forever (the idle branch jumped
// the clock to an arrival time it had already reached). It must error —
// promptly — both when the impossible request leads the trace and when
// it arrives mid-trace behind work that completes fine.
func TestContinuousOversizedMidTraceErrors(t *testing.T) {
	run := func(name string, reqs []Request) {
		cfg := baseConfig()
		cfg.StepCosts = fakeCosts()
		cfg.KVBlockTokens = 4
		cfg.KVBudget = cfg.Model.KVBytes(1, 64) // 16 blocks of 4 tokens
		done := make(chan error, 1)
		go func() {
			_, err := SimulateContinuous(cfg, reqs)
			done <- err
		}()
		select {
		case err := <-done:
			if err == nil {
				t.Errorf("%s: an impossible request must error", name)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%s: simulator hung on an impossible request", name)
		}
	}
	// 512 prompt tokens need 128 blocks + headroom; the pool holds 16.
	run("leading", []Request{
		{Request: trace.Request{InputLen: 512, OutputLen: 4}, Arrival: 0},
	})
	run("mid-trace", []Request{
		{Request: trace.Request{InputLen: 8, OutputLen: 4}, Arrival: 0},
		{Request: trace.Request{InputLen: 512, OutputLen: 4}, Arrival: 1},
	})
}

// TestContinuousStepCostsDeterministic: two runs over the same injected
// costs and trace produce identical Metrics (the property the
// differential test's bit-determinism requirement rests on).
func TestContinuousStepCostsDeterministic(t *testing.T) {
	cfg := baseConfig()
	cfg.StepCosts = fakeCosts()
	cfg.KVBlockTokens = 4
	cfg.KVBudget = cfg.Model.KVBytes(1, 2048) // tight enough to preempt, big enough for any prompt
	reqs := genReqs(t, 40, 50)
	a, err := SimulateContinuous(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateContinuous(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("runs diverged:\n%+v\n%+v", a, b)
	}
}
