// Package serve simulates a serving deployment in front of the inference
// engine: requests arrive over time (Poisson arrivals over the §7 trace
// distributions), a batcher groups them under a size cap and a waiting
// window, and each formed batch runs through engine.Run. The output is
// what an operator would measure — per-request latency percentiles
// (including queueing), sustained throughput, and batch-size statistics —
// connecting the paper's per-batch results to end-to-end serving
// behaviour.
package serve

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/lia-sim/lia/internal/batchpolicy"
	"github.com/lia-sim/lia/internal/cxl"
	"github.com/lia-sim/lia/internal/engine"
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/trace"
	"github.com/lia-sim/lia/internal/units"
)

// Request is an inference request with an arrival time.
type Request struct {
	trace.Request
	// Arrival is when the request enters the queue.
	Arrival units.Seconds
}

// PoissonArrivals draws n requests from the generator with exponential
// inter-arrival times at the given rate (requests/second).
func PoissonArrivals(gen *trace.Generator, n int, ratePerSec float64, seed int64) ([]Request, error) {
	if ratePerSec <= 0 {
		return nil, fmt.Errorf("serve: arrival rate must be positive, got %v", ratePerSec)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Request, n)
	var clock units.Seconds
	for i := range out {
		clock += units.Seconds(rng.ExpFloat64() / ratePerSec)
		out[i] = Request{Request: gen.Next(), Arrival: clock}
	}
	return out, nil
}

// Config parameterizes a serving simulation.
type Config struct {
	// System, Model and Framework select the backend.
	System    hw.System
	Model     model.Config
	Framework engine.Framework
	// MaxBatch caps the batch former.
	MaxBatch int
	// MaxWait is how long the batcher holds the first queued request
	// while gathering more.
	MaxWait units.Seconds
	// Placement is the host DDR/CXL split.
	Placement cxl.Placement
	// AssumeHostCapacity mirrors engine.Config's latency-model mode.
	AssumeHostCapacity bool
	// KVBudget, when positive, bounds the paged KV-cache pool available
	// to SimulateContinuous; admission and extension then go through the
	// kvpage allocator, and exhaustion preempts the youngest sequence.
	// Zero means unconstrained (Simulate ignores this field).
	KVBudget units.Bytes
	// KVBlockTokens is the page size in token slots (default 16).
	KVBlockTokens int
	// StepCosts, when non-nil, replaces the analytic execution back-end
	// with injected per-iteration costs in the iteration-level simulators.
	// The differential test uses this to drive SimulateContinuous and the
	// gateway's trace replay off one deterministic fake engine.
	StepCosts *StepCosts
	// OnEvent, when non-nil, observes every scheduling decision
	// (admit/preempt/complete) SimulateContinuous makes, in order.
	OnEvent func(batchpolicy.Event)
}

// StepCosts injects deterministic per-iteration costs in place of the
// analytic execution back-end. Prefill is charged per batched prefill
// launch (batch size, longest prompt); Decode per decode iteration
// (batch size, mean context length).
type StepCosts struct {
	Prefill func(batch, maxIn int) (units.Seconds, error)
	Decode  func(batch, meanCtx int) (units.Seconds, error)
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.MaxBatch < 1 {
		return fmt.Errorf("serve: MaxBatch must be ≥1")
	}
	if c.MaxWait < 0 || math.IsNaN(float64(c.MaxWait)) {
		return fmt.Errorf("serve: MaxWait must be ≥0, got %v", c.MaxWait)
	}
	if c.KVBudget < 0 {
		return fmt.Errorf("serve: KVBudget must be ≥0, got %v", c.KVBudget)
	}
	if c.KVBudget > 0 && c.KVBlockTokens < 0 {
		return fmt.Errorf("serve: KVBlockTokens must be ≥0, got %d", c.KVBlockTokens)
	}
	return nil
}

// Metrics summarizes a simulated run.
type Metrics struct {
	// Completed counts served requests.
	Completed int
	// Makespan is when the last batch finished.
	Makespan units.Seconds
	// GeneratedTokens counts all emitted tokens, including tokens that a
	// preempted sequence regenerates after recomputation — it measures
	// device work, not unique output.
	GeneratedTokens int
	// Throughput is GeneratedTokens / Makespan.
	Throughput float64
	// Mean, P50, P95 and P99 are per-request latencies from arrival to
	// batch completion (queueing + padding + inference).
	Mean, P50, P95, P99 units.Seconds
	// MeanQueueing is the average time spent waiting before a batch
	// started.
	MeanQueueing units.Seconds
	// Batches counts executed batches and MeanBatchSize is their mean
	// sequence occupancy, with one shared definition across all three
	// simulators: Simulate counts each formed batch once; the
	// iteration-level simulators count every executed scheduler step —
	// each prefill launch and each decode iteration in
	// SimulateContinuous, and each chunked iteration in SimulateChunked —
	// weighted by the sequences it carried. Under that definition a
	// long-running decode batch contributes its occupancy every
	// iteration, so MeanBatchSize reflects sustained device-side batch
	// utilization rather than admission burst sizes.
	Batches       int
	MeanBatchSize float64
	// Preemptions counts sequences evicted and recomputed because the
	// paged KV pool ran dry (continuous batching with KVBudget only).
	Preemptions int
}

// Simulate runs the batch-serving loop over the request stream (which
// must be sorted by arrival; PoissonArrivals output already is).
func Simulate(cfg Config, reqs []Request) (Metrics, error) {
	if err := cfg.Validate(); err != nil {
		return Metrics{}, err
	}
	if len(reqs) == 0 {
		return Metrics{}, fmt.Errorf("serve: no requests")
	}
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Arrival < reqs[i-1].Arrival {
			return Metrics{}, fmt.Errorf("serve: requests not sorted by arrival")
		}
	}

	var (
		m         Metrics
		clock     units.Seconds
		latencies []units.Seconds
		queueing  []units.Seconds
		next      int
	)
	for next < len(reqs) {
		head := reqs[next]
		// The server idles until the head arrives, then holds the batch
		// open for MaxWait (or until full).
		if clock < head.Arrival {
			clock = head.Arrival
		}
		deadline := head.Arrival + cfg.MaxWait
		if clock > deadline {
			deadline = clock
		}
		batch := []Request{head}
		next++
		for next < len(reqs) && len(batch) < cfg.MaxBatch && reqs[next].Arrival <= deadline {
			batch = append(batch, reqs[next])
			next++
		}
		start := deadline
		if len(batch) == cfg.MaxBatch {
			// A full batch launches as soon as its last member arrived.
			start = batch[len(batch)-1].Arrival
			if start < clock {
				start = clock
			}
		}

		// The batch pads to its longest prompt and generation.
		maxIn, maxOut := 1, 1
		for _, r := range batch {
			if r.InputLen > maxIn {
				maxIn = r.InputLen
			}
			if r.OutputLen > maxOut {
				maxOut = r.OutputLen
			}
		}
		res, err := engine.Run(engine.Config{
			Framework:          cfg.Framework,
			System:             cfg.System,
			Model:              cfg.Model,
			Workload:           trace.Workload{Batch: len(batch), InputLen: maxIn, OutputLen: maxOut},
			Placement:          cfg.Placement,
			AssumeHostCapacity: cfg.AssumeHostCapacity,
		})
		if err != nil {
			return Metrics{}, err
		}
		if res.OOM {
			return Metrics{}, fmt.Errorf("serve: batch of %d OOMed: %s", len(batch), res.OOMReason)
		}
		finish := start + res.Latency
		clock = finish
		m.Batches++
		m.MeanBatchSize += float64(len(batch))
		for _, r := range batch {
			latencies = append(latencies, finish-r.Arrival)
			queueing = append(queueing, start-r.Arrival)
			m.GeneratedTokens += r.OutputLen
		}
		if finish > m.Makespan {
			m.Makespan = finish
		}
	}

	m.Completed = len(latencies)
	m.MeanBatchSize /= float64(m.Batches)
	if m.Makespan > 0 {
		m.Throughput = float64(m.GeneratedTokens) / float64(m.Makespan)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	var sum, qsum float64
	for _, l := range latencies {
		sum += float64(l)
	}
	for _, q := range queueing {
		qsum += float64(q)
	}
	m.Mean = units.Seconds(sum / float64(len(latencies)))
	m.MeanQueueing = units.Seconds(qsum / float64(len(queueing)))
	m.P50 = percentile(latencies, 0.50)
	m.P95 = percentile(latencies, 0.95)
	m.P99 = percentile(latencies, 0.99)
	return m, nil
}

// percentile returns the p-quantile of a sorted slice (nearest-rank).
func percentile(sorted []units.Seconds, p float64) units.Seconds {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
