package serve

import (
	"fmt"
	"sort"

	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/exec"
	"github.com/lia-sim/lia/internal/memplan"
	"github.com/lia-sim/lia/internal/units"
)

// SimulateChunked runs Sarathi-style chunked-prefill continuous batching:
// instead of stalling the running batch while a new request's whole
// prompt prefills, each scheduler iteration carries the decode batch
// *plus* up to `chunk` prompt tokens of in-flight prefills — the prompt
// rows piggyback on the batched forward pass.
//
// Caveat this simulator surfaces: chunked prefill assumes resident
// weights. In the offloaded regime every iteration moves (or CPU-reads)
// the full parameter set, so splitting an L-token prompt into L/chunk
// chunks multiplies that dominant cost by L/chunk — whole-prompt prefill
// amortizes it in a single pass. Expect chunking to help only when the
// model is (mostly) pinned; see TestChunkedPrefillCostsInOffloadedRegime.
//
// chunk is the per-iteration prefill token budget (across all prefilling
// sequences).
func SimulateChunked(cfg Config, reqs []Request, chunk int) (Metrics, error) {
	if err := cfg.Validate(); err != nil {
		return Metrics{}, err
	}
	if chunk < 1 {
		return Metrics{}, fmt.Errorf("serve: chunk must be ≥1 token")
	}
	if len(reqs) == 0 {
		return Metrics{}, fmt.Errorf("serve: no requests")
	}
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Arrival < reqs[i-1].Arrival {
			return Metrics{}, fmt.Errorf("serve: requests not sorted by arrival")
		}
	}

	env := core.NewEnvWithPlacement(cfg.System, cfg.Model, cfg.Placement)
	gpuPlan := memplan.PlanLIAGPU(cfg.System.GPU, cfg.Model, cfg.MaxBatch, cfg.Model.MaxSeqLen)
	opt := core.Options{KVOnGPU: gpuPlan.KVOnGPU}
	basePlan := exec.Plan{
		Env:          env,
		Opt:          opt,
		Layers:       cfg.Model.Layers,
		PinnedLayers: gpuPlan.PinnedLayers,
		Overlap:      true,
		MiniBatches:  1,
	}

	// Iteration cost: a decode-shaped pass whose row count is the decode
	// batch plus the piggybacked prompt tokens (that is what a chunked
	// iteration's kernel shapes look like). Costs come from the shared
	// step cache (stepcost.go), keyed by (plan, rows, context bucket).
	iterCost := func(rows, l int) (units.Seconds, error) {
		return decodeStepCost(basePlan, rows, l)
	}

	type seq struct {
		req       Request
		prefilled int // prompt tokens processed so far
		context   int
		remaining int
	}
	var (
		m         Metrics
		clock     units.Seconds
		active    []*seq // prefilling and decoding sequences together
		next      int
		latencies []units.Seconds
		queueing  []units.Seconds
	)

	for next < len(reqs) || len(active) > 0 {
		// Admit arrivals up to the batch cap; no prefill stall — they
		// start chunking on the next iteration.
		for next < len(reqs) && len(active) < cfg.MaxBatch && reqs[next].Arrival <= clock {
			r := reqs[next]
			active = append(active, &seq{req: r, remaining: r.OutputLen})
			queueing = append(queueing, clock-r.Arrival)
			next++
		}
		if len(active) == 0 {
			clock = reqs[next].Arrival
			continue
		}

		// Assemble the iteration: decode rows plus a chunk of prefill rows.
		rows := 0
		ctxSum, ctxN := 0, 0
		budget := chunk
		for _, s := range active {
			if s.prefilled < s.req.InputLen {
				take := s.req.InputLen - s.prefilled
				if take > budget {
					take = budget
				}
				rows += take
				budget -= take
			} else {
				rows++
				ctxSum += s.context
			}
			ctxN++
		}
		// len(active) > 0 here, so ctxN > 0 — no fallback default needed
		// (an earlier version carried a dead `meanCtx = 256` arm).
		total := ctxSum
		for _, s := range active {
			if s.prefilled < s.req.InputLen {
				total += s.prefilled
			}
		}
		meanCtx := total/ctxN + 1
		c, err := iterCost(rows, meanCtx)
		if err != nil {
			return Metrics{}, err
		}
		clock += c
		m.Batches++ // each scheduler iteration is one executed batch
		m.MeanBatchSize += float64(len(active))

		// Advance: prefills consume their chunk share; decoders emit one
		// token each.
		budget = chunk
		kept := active[:0]
		for _, s := range active {
			if s.prefilled < s.req.InputLen {
				take := s.req.InputLen - s.prefilled
				if take > budget {
					take = budget
				}
				s.prefilled += take
				budget -= take
				if s.prefilled >= s.req.InputLen {
					s.context = s.req.InputLen
				}
				kept = append(kept, s)
				continue
			}
			s.context++
			s.remaining--
			m.GeneratedTokens++
			if s.remaining <= 0 {
				latencies = append(latencies, clock-s.req.Arrival)
			} else {
				kept = append(kept, s)
			}
		}
		active = kept
		if clock > m.Makespan {
			m.Makespan = clock
		}
	}

	m.Completed = len(latencies)
	if m.Batches > 0 {
		m.MeanBatchSize /= float64(m.Batches)
	}
	if m.Makespan > 0 {
		m.Throughput = float64(m.GeneratedTokens) / float64(m.Makespan)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	var sum, qsum float64
	for _, l := range latencies {
		sum += float64(l)
	}
	for _, q := range queueing {
		qsum += float64(q)
	}
	if len(latencies) > 0 {
		m.Mean = units.Seconds(sum / float64(len(latencies)))
	}
	if len(queueing) > 0 {
		m.MeanQueueing = units.Seconds(qsum / float64(len(queueing)))
	}
	m.P50 = percentile(latencies, 0.50)
	m.P95 = percentile(latencies, 0.95)
	m.P99 = percentile(latencies, 0.99)
	return m, nil
}
