package units

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestBytesString(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{512, "512 B"},
		{2 * KiB, "2.00 KiB"},
		{3 * MiB, "3.00 MiB"},
		{40 * GiB, "40.00 GiB"},
		{1.5 * TiB, "1.50 TiB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Bytes(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestFLOPsString(t *testing.T) {
	if got := (8 * TFLOP).String(); got != "8.00 TFLOP" {
		t.Errorf("got %q", got)
	}
	if got := (1.5 * PFLOP).String(); got != "1.50 PFLOP" {
		t.Errorf("got %q", got)
	}
	if got := FLOPs(12).String(); got != "12 FLOP" {
		t.Errorf("got %q", got)
	}
}

func TestBandwidthAndRateStrings(t *testing.T) {
	if got := (64 * GBps).String(); got != "64.0 GB/s" {
		t.Errorf("got %q", got)
	}
	if got := (20 * TFLOPS).String(); got != "20.0 TFLOPS" {
		t.Errorf("got %q", got)
	}
	if got := (199 * GFLOPS).String(); got != "199.0 GFLOPS" {
		t.Errorf("got %q", got)
	}
}

func TestSecondsString(t *testing.T) {
	cases := []struct {
		in   Seconds
		want string
	}{
		{5.05, "5.05 s"},
		{12 * Millisecond, "12.00 ms"},
		{3 * Microsecond, "3.00 µs"},
		{150 * Nanosecond, "150.0 ns"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Seconds(%v) = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestPowerEnergyMoneyStrings(t *testing.T) {
	if got := Watts(700).String(); got != "700 W" {
		t.Errorf("got %q", got)
	}
	if got := Joules(2500).String(); got != "2.50 kJ" {
		t.Errorf("got %q", got)
	}
	if got := USD(150000).String(); got != "$150000.00" {
		t.Errorf("got %q", got)
	}
	if !strings.HasPrefix(Joules(0.002).String(), "2.00 m") {
		t.Errorf("millijoule formatting broken: %q", Joules(0.002).String())
	}
}

func TestTransferTime(t *testing.T) {
	// 64 GB over 64 GB/s with no setup is exactly 1 s.
	got := TransferTime(64*GB, 64*GBps, 0)
	if math.Abs(float64(got)-1) > 1e-12 {
		t.Errorf("TransferTime = %v, want 1 s", got)
	}
	// Setup latency is additive.
	got = TransferTime(64*GB, 64*GBps, 10*Microsecond)
	if math.Abs(float64(got)-1.00001) > 1e-9 {
		t.Errorf("TransferTime with setup = %v", got)
	}
	// Zero bytes costs only the setup.
	if got := TransferTime(0, 64*GBps, 5*Microsecond); got != 5*Microsecond {
		t.Errorf("zero-byte transfer = %v", got)
	}
	// Dead link never completes.
	if got := TransferTime(1, 0, 0); !math.IsInf(float64(got), 1) {
		t.Errorf("zero-bandwidth transfer = %v, want +Inf", got)
	}
}

func TestComputeTime(t *testing.T) {
	got := ComputeTime(20*TFLOP, 20*TFLOPS)
	if math.Abs(float64(got)-1) > 1e-12 {
		t.Errorf("ComputeTime = %v, want 1 s", got)
	}
	if got := ComputeTime(0, 20*TFLOPS); got != 0 {
		t.Errorf("zero-FLOP compute = %v, want 0", got)
	}
	if got := ComputeTime(1, 0); !math.IsInf(float64(got), 1) {
		t.Errorf("zero-throughput compute = %v, want +Inf", got)
	}
}

func TestOpsPerByte(t *testing.T) {
	if got := OpsPerByte(100, 50); got != 2 {
		t.Errorf("OpsPerByte = %v, want 2", got)
	}
	if got := OpsPerByte(1, 0); !math.IsInf(got, 1) {
		t.Errorf("OpsPerByte with 0 bytes = %v, want +Inf", got)
	}
	if got := OpsPerByte(0, 0); got != 0 {
		t.Errorf("OpsPerByte(0,0) = %v, want 0", got)
	}
}

// Property: transfer time is monotonically non-decreasing in data size and
// non-increasing in bandwidth.
func TestTransferTimeMonotonic(t *testing.T) {
	f := func(rawB, rawExtra, rawBW uint32) bool {
		b := Bytes(rawB)
		extra := Bytes(rawExtra)
		bw := BytesPerSecond(rawBW%1000 + 1)
		t1 := TransferTime(b, bw, 0)
		t2 := TransferTime(b+extra, bw, 0)
		t3 := TransferTime(b, bw*2, 0)
		return t2 >= t1 && t3 <= t1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: compute time scales linearly with work.
func TestComputeTimeLinear(t *testing.T) {
	f := func(rawC uint32, rawR uint32) bool {
		c := FLOPs(rawC)
		r := FLOPSRate(rawR%10000 + 1)
		t1 := ComputeTime(c, r)
		t2 := ComputeTime(2*c, r)
		return math.Abs(float64(t2)-2*float64(t1)) <= 1e-9*math.Max(1, float64(t2))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
