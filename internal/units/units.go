// Package units defines the physical quantities the LIA models trade in:
// data sizes, compute counts, bandwidths, throughputs, durations, power,
// and money. Keeping them as distinct types catches unit mix-ups (bytes
// divided by FLOPS, etc.) at compile time and gives every model a single
// place for human-readable formatting.
package units

import (
	"fmt"
	"math"
)

// Bytes is a data size in bytes. Negative values are invalid everywhere
// they are consumed; constructors in higher layers guard against them.
type Bytes float64

// Data size constants.
const (
	KiB Bytes = 1 << 10
	MiB Bytes = 1 << 20
	GiB Bytes = 1 << 30
	TiB Bytes = 1 << 40

	KB Bytes = 1e3
	MB Bytes = 1e6
	GB Bytes = 1e9
	TB Bytes = 1e12
)

// String renders the size with a binary suffix, e.g. "3.62 GiB".
func (b Bytes) String() string {
	abs := math.Abs(float64(b))
	switch {
	case abs >= float64(TiB):
		return fmt.Sprintf("%.2f TiB", float64(b)/float64(TiB))
	case abs >= float64(GiB):
		return fmt.Sprintf("%.2f GiB", float64(b)/float64(GiB))
	case abs >= float64(MiB):
		return fmt.Sprintf("%.2f MiB", float64(b)/float64(MiB))
	case abs >= float64(KiB):
		return fmt.Sprintf("%.2f KiB", float64(b)/float64(KiB))
	default:
		return fmt.Sprintf("%.0f B", float64(b))
	}
}

// FLOPs is a count of floating-point operations (multiply and add counted
// separately, matching the 2·M·N·K convention for GEMM).
type FLOPs float64

// Compute count constants.
const (
	KFLOP FLOPs = 1e3
	MFLOP FLOPs = 1e6
	GFLOP FLOPs = 1e9
	TFLOP FLOPs = 1e12
	PFLOP FLOPs = 1e15
)

// String renders the count with an SI suffix, e.g. "8.52 TFLOP".
func (f FLOPs) String() string {
	abs := math.Abs(float64(f))
	switch {
	case abs >= float64(PFLOP):
		return fmt.Sprintf("%.2f PFLOP", float64(f)/float64(PFLOP))
	case abs >= float64(TFLOP):
		return fmt.Sprintf("%.2f TFLOP", float64(f)/float64(TFLOP))
	case abs >= float64(GFLOP):
		return fmt.Sprintf("%.2f GFLOP", float64(f)/float64(GFLOP))
	case abs >= float64(MFLOP):
		return fmt.Sprintf("%.2f MFLOP", float64(f)/float64(MFLOP))
	default:
		return fmt.Sprintf("%.0f FLOP", float64(f))
	}
}

// BytesPerSecond is a bandwidth.
type BytesPerSecond float64

// Bandwidth constants.
const (
	MBps BytesPerSecond = 1e6
	GBps BytesPerSecond = 1e9
	TBps BytesPerSecond = 1e12
)

// String renders the bandwidth, e.g. "64.0 GB/s".
func (bw BytesPerSecond) String() string {
	abs := math.Abs(float64(bw))
	switch {
	case abs >= float64(TBps):
		return fmt.Sprintf("%.2f TB/s", float64(bw)/float64(TBps))
	case abs >= float64(GBps):
		return fmt.Sprintf("%.1f GB/s", float64(bw)/float64(GBps))
	default:
		return fmt.Sprintf("%.1f MB/s", float64(bw)/float64(MBps))
	}
}

// FLOPSRate is a compute throughput in FLOP per second.
type FLOPSRate float64

// Throughput constants.
const (
	GFLOPS FLOPSRate = 1e9
	TFLOPS FLOPSRate = 1e12
	PFLOPS FLOPSRate = 1e15
)

// String renders the throughput, e.g. "20.1 TFLOPS".
func (r FLOPSRate) String() string {
	abs := math.Abs(float64(r))
	switch {
	case abs >= float64(PFLOPS):
		return fmt.Sprintf("%.2f PFLOPS", float64(r)/float64(PFLOPS))
	case abs >= float64(TFLOPS):
		return fmt.Sprintf("%.1f TFLOPS", float64(r)/float64(TFLOPS))
	default:
		return fmt.Sprintf("%.1f GFLOPS", float64(r)/float64(GFLOPS))
	}
}

// Seconds is a duration. The models use float seconds rather than
// time.Duration because analytic latencies routinely fall below a
// nanosecond per element and scale to thousands of seconds per batch.
type Seconds float64

// Duration constants.
const (
	Nanosecond  Seconds = 1e-9
	Microsecond Seconds = 1e-6
	Millisecond Seconds = 1e-3
	Second      Seconds = 1
)

// String renders the duration with an adaptive unit, e.g. "5.05 s".
func (s Seconds) String() string {
	abs := math.Abs(float64(s))
	switch {
	case abs >= 1:
		return fmt.Sprintf("%.2f s", float64(s))
	case abs >= 1e-3:
		return fmt.Sprintf("%.2f ms", float64(s)*1e3)
	case abs >= 1e-6:
		return fmt.Sprintf("%.2f µs", float64(s)*1e6)
	default:
		return fmt.Sprintf("%.1f ns", float64(s)*1e9)
	}
}

// Watts is electrical power.
type Watts float64

// String renders power, e.g. "700 W".
func (w Watts) String() string { return fmt.Sprintf("%.0f W", float64(w)) }

// Joules is energy.
type Joules float64

// String renders energy with an adaptive unit.
func (j Joules) String() string {
	abs := math.Abs(float64(j))
	switch {
	case abs >= 1e6:
		return fmt.Sprintf("%.2f MJ", float64(j)/1e6)
	case abs >= 1e3:
		return fmt.Sprintf("%.2f kJ", float64(j)/1e3)
	case abs >= 1:
		return fmt.Sprintf("%.2f J", float64(j))
	default:
		return fmt.Sprintf("%.2f mJ", float64(j)*1e3)
	}
}

// USD is money in United States dollars.
type USD float64

// String renders money, e.g. "$150000.00".
func (u USD) String() string { return fmt.Sprintf("$%.2f", float64(u)) }

// TransferTime returns how long moving b bytes over a link of bandwidth bw
// takes, plus a fixed per-transfer setup latency. A zero or negative
// bandwidth yields +Inf: the transfer can never complete.
func TransferTime(b Bytes, bw BytesPerSecond, setup Seconds) Seconds {
	if b <= 0 {
		return setup
	}
	if bw <= 0 {
		return Seconds(math.Inf(1))
	}
	return Seconds(float64(b)/float64(bw)) + setup
}

// ComputeTime returns how long executing c FLOPs at throughput r takes.
// A zero or negative throughput yields +Inf.
func ComputeTime(c FLOPs, r FLOPSRate) Seconds {
	if c <= 0 {
		return 0
	}
	if r <= 0 {
		return Seconds(math.Inf(1))
	}
	return Seconds(float64(c) / float64(r))
}

// OpsPerByte is arithmetic intensity: FLOPs per byte moved. Returns +Inf
// when no bytes move and zero when no work is done.
func OpsPerByte(c FLOPs, b Bytes) float64 {
	if b <= 0 {
		if c <= 0 {
			return 0
		}
		return math.Inf(1)
	}
	return float64(c) / float64(b)
}
