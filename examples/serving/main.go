// Serving: put the engine behind a batching queue and watch the classic
// latency/throughput trade-off emerge. Requests arrive at a fixed rate
// from the code-completion trace (§7's Azure statistics); the batcher's
// size cap is the knob. Small caps give low queueing latency; large caps
// give the amortization the offline scenarios of Figure 11 exploit.
package main

import (
	"fmt"
	"log"

	"github.com/lia-sim/lia"
)

func main() {
	gen, err := lia.NewTraceGenerator(lia.TraceCode, 32, 1024, 7)
	if err != nil {
		log.Fatal(err)
	}
	reqs, err := lia.PoissonArrivals(gen, 48, 2.0, 8) // 2 requests/s
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("OPT-30B on SPR-A100, LIA backend, 48 requests at 2 req/s")
	fmt.Printf("%9s | %12s %10s %10s %10s %12s\n",
		"max-batch", "tokens/s", "p50", "p95", "queueing", "mean batch")
	for _, maxBatch := range []int{1, 4, 16, 48} {
		m, err := lia.Serve(lia.ServeConfig{
			System:    lia.SPRA100,
			Model:     lia.OPT30B,
			Framework: lia.LIA,
			MaxBatch:  maxBatch,
			MaxWait:   5,
		}, reqs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%9d | %12.1f %10v %10v %10v %12.1f\n",
			maxBatch, m.Throughput, m.P50, m.P95, m.MeanQueueing, m.MeanBatchSize)
	}
	// Continuous (iteration-level) batching: requests retire as they
	// finish instead of waiting for the batch's longest member.
	cont, err := lia.ServeContinuous(lia.ServeConfig{
		System:    lia.SPRA100,
		Model:     lia.OPT30B,
		Framework: lia.LIA,
		MaxBatch:  16,
		MaxWait:   5,
	}, reqs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%9s | %12.1f %10v %10v %10v %12.1f\n",
		"cont.", cont.Throughput, cont.P50, cont.P95, cont.MeanQueueing, cont.MeanBatchSize)

	fmt.Println("\nat this arrival rate the backend saturates with small batches, so larger")
	fmt.Println("caps win on every metric: parameter reads amortize across the batch (the")
	fmt.Println("offline effect of Figure 11). Under light load the trade-off reverses —")
	fmt.Println("batching only adds queueing — which is why §7 treats online (B=1) and")
	fmt.Println("offline (B=64/900) as distinct scenarios. Continuous batching dominates both:")
	fmt.Println("requests join mid-flight and retire as they finish, so nothing waits for")
	fmt.Println("the batch's longest generation")
}
