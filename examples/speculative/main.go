// Speculative decoding: why drafting compounds with offloading. An
// offloaded OPT-175B pays for its full parameter movement on every decode
// pass (Figure 3's bottleneck) whether it scores one token or eight — so
// letting a GPU-resident OPT-6.7B draft γ tokens and verifying them in
// one batched target pass multiplies tokens per pass almost for free.
package main

import (
	"fmt"
	"log"

	"github.com/lia-sim/lia"
)

func main() {
	fmt.Println("OPT-6.7B draft → offloaded OPT-175B target, SPR-A100, B=1, L=512")
	fmt.Printf("%4s %6s | %12s %12s %14s %9s\n",
		"γ", "α", "draft/round", "verify/round", "tokens/round", "speedup")
	for _, gamma := range []int{2, 4, 8} {
		for _, alpha := range []float64{0.6, 0.9} {
			res, err := lia.EstimateSpeculative(lia.SpeculativeConfig{
				System:     lia.SPRA100,
				Target:     lia.OPT175B,
				Draft:      lia.ModelsByNameMust("OPT-6.7B"),
				Gamma:      gamma,
				Acceptance: alpha,
				Batch:      1,
				Context:    512,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%4d %6.1f | %12v %12v %14.2f %8.2fx\n",
				gamma, alpha, res.DraftPerRound, res.VerifyPerRound,
				res.TokensPerRound, res.Speedup)
		}
	}
	fmt.Println("\nthe verify pass costs barely more than a plain decode step (same parameter")
	fmt.Println("movement), so accepted tokens are nearly free — the offloading bottleneck")
	fmt.Println("is exactly what speculation amortizes. At large B, decode stops being")
	fmt.Println("movement-bound and the edge fades.")
}
