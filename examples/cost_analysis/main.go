// Cost analysis: the §7.8 question — is one big CPU plus one GPU cheaper
// per token than eight GPUs? Compare LIA on a ~$22k GNR-A100 box against
// 8-way tensor parallelism on a ~$200k DGX-A100 across batch sizes,
// in per-GPU throughput and dollars per million generated tokens.
package main

import (
	"fmt"
	"log"

	"github.com/lia-sim/lia"
	"github.com/lia-sim/lia/internal/cost"
)

func main() {
	assume := cost.Defaults()
	fmt.Printf("OPT-175B, Lin=32, Lout=256, 3-year amortization, $0.1/kWh\n")
	fmt.Printf("GNR-A100 system cost: %v/h    DGX-A100: %v/h\n\n",
		assume.HourlyCost(lia.GNRA100), assume.HourlyCost(lia.DGXA100))
	fmt.Printf("%6s | %-14s %-12s | %-14s %-12s\n", "B", "LIA tok/s/GPU", "LIA $/Mtok", "DGX tok/s/GPU", "DGX $/Mtok")

	for _, b := range []int{1, 64, 900} {
		w := lia.Workload{Batch: b, InputLen: 32, OutputLen: 256}
		liaRes, err := lia.Run(lia.Config{
			Framework: lia.LIA, System: lia.GNRA100, Model: lia.OPT175B,
			Workload: w, AssumeHostCapacity: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		dgxRes, err := lia.Run(lia.Config{
			Framework: lia.MultiGPU, System: lia.DGXA100, Model: lia.OPT175B,
			Workload: w, AssumeHostCapacity: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		liaCol := fmt.Sprintf("%-14.2f %-12v", cost.PerGPUThroughput(lia.GNRA100, liaRes.Throughput),
			assume.PerMillionTokens(lia.GNRA100, liaRes.Throughput))
		dgxCol := "OOM"
		if !dgxRes.OOM {
			dgxCol = fmt.Sprintf("%-14.2f %-12v", cost.PerGPUThroughput(lia.DGXA100, dgxRes.Throughput),
				assume.PerMillionTokens(lia.DGXA100, dgxRes.Throughput))
		}
		fmt.Printf("%6d | %s | %s\n", b, liaCol, dgxCol)
	}

	// And the CXL saving on the memory bill (§8).
	allDDR, hybrid, saved := cost.MemorySavings(lia.OPT175B.ParamBytes(), 0.43)
	fmt.Printf("\nmemory system for the OPT-175B parameters: %v all-DDR vs %v with 43%%→CXL (saves %v)\n",
		allDDR, hybrid, saved)
}
