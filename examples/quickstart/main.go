// Quickstart: estimate OPT-30B inference on an SPR-A100 box and compare
// LIA against the IPEX (CPU-only) and FlexGen (offloading) baselines for
// both an online (B=1) and an offline (B=64) workload — a miniature of
// the paper's Figures 10 and 11.
package main

import (
	"fmt"
	"log"

	"github.com/lia-sim/lia"
)

func main() {
	workloads := []struct {
		name string
		w    lia.Workload
	}{
		{"online (latency-driven)", lia.Workload{Batch: 1, InputLen: 512, OutputLen: 32}},
		{"offline (throughput-driven)", lia.Workload{Batch: 64, InputLen: 512, OutputLen: 32}},
	}
	frameworks := []lia.Framework{lia.LIA, lia.IPEX, lia.FlexGen}

	for _, wl := range workloads {
		fmt.Printf("== %s: %s, OPT-30B on SPR-A100 ==\n", wl.name, wl.w)
		var liaRes lia.Result
		for _, fw := range frameworks {
			res, err := lia.Run(lia.Config{
				Framework: fw,
				System:    lia.SPRA100,
				Model:     lia.OPT30B,
				Workload:  wl.w,
			})
			if err != nil {
				log.Fatal(err)
			}
			if fw == lia.LIA {
				liaRes = res
			}
			speedup := ""
			if fw != lia.LIA {
				speedup = fmt.Sprintf("  (LIA is %.1fx faster)", float64(res.Latency)/float64(liaRes.Latency))
			}
			fmt.Printf("  %-8v latency %8v, %8.1f tokens/s, %6v/token%s\n",
				fw, res.Latency, res.Throughput, res.EnergyPerToken, speedup)
		}
		fmt.Printf("  LIA chose prefill %s, decode %s, pinned %d layers\n\n",
			liaRes.PrefillPolicy, liaRes.DecodePolicy, liaRes.PinnedLayers)
	}
}
