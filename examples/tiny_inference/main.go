// Tiny inference: run the *functional* engine — a real transformer whose
// CPU-offloaded sublayers execute through the emulated Intel AMX tile
// pipeline (TDPBF16PS semantics, VNNI layout, bfloat16 rounding) and
// whose GPU sublayers use dense BF16 GEMM. Greedy decoding produces the
// same tokens under every offloading policy: the offloading decision is
// purely a performance choice, never a correctness one.
package main

import (
	"fmt"
	"log"

	"github.com/lia-sim/lia"
)

func main() {
	m, err := lia.NewFunctionalModel(lia.TinyModelConfig(), 24)
	if err != nil {
		log.Fatal(err)
	}
	prompt := []int{12, 7, 88, 3, 41}
	const n = 16

	fmt.Printf("tiny OPT-style model: %d layers, d_model=%d, %d heads\n",
		m.Cfg.Layers, m.Cfg.DModel, m.Cfg.Heads)
	fmt.Printf("prompt tokens: %v\n\n", prompt)

	policies := []lia.Policy{
		lia.FullGPU,
		lia.FullCPU,
		lia.PartialCPU,
		{true, false, true, false, true, false}, // an arbitrary split
	}
	var reference []int
	for i, p := range policies {
		exe := lia.NewFunctionalExecutor(m, p)
		out, err := exe.Generate(prompt, n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("policy %s -> %v\n", p, out)
		fmt.Printf("   kernels: %d AMX-tile matmuls (%d tile cycles), %d dense matmuls\n",
			exe.Stats.CPUMatmuls, exe.Stats.AMXCycles, exe.Stats.GPUMatmuls)
		if i == 0 {
			reference = out
			continue
		}
		for j := range out {
			if out[j] != reference[j] {
				log.Fatalf("policy %s diverged from the all-GPU reference!", p)
			}
		}
	}
	fmt.Println("\nall policies generated identical tokens — offloading is numerically transparent")
}
