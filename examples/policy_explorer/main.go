// Policy explorer: walk the (batch, input-length) plane and watch LIA's
// compute-offloading optimizer switch between full-CPU, partial, and
// full-GPU policies — the structure behind the paper's Figure 9 — then
// drill into one point and show why the winner wins.
package main

import (
	"fmt"

	"github.com/lia-sim/lia"
)

func main() {
	sys := lia.SPRA100
	m := lia.OPT175B

	fmt.Printf("Optimal policies for %s on %s\n", m.Name, sys.Name)
	fmt.Printf("(1 = sublayer on CPU; sublayer order: QKV, QK^T, SxV, OutProj, FC1, FC2)\n\n")
	fmt.Printf("%8s %8s | %-15s %-15s\n", "B", "L_in", "prefill", "decode")
	for _, b := range []int{1, 8, 64, 256, 1024} {
		for _, l := range []int{32, 256, 1024} {
			pre, dec := lia.OptimalPolicies(sys, m, b, l)
			fmt.Printf("%8d %8d | %-15s %-15s\n", b, l, pre, dec)
		}
	}

	// Why: compare the canonical policies' single-decoder-layer latency
	// at one interesting point near the prefill transition (B·L ≈ 850).
	b, l := 2, 512
	fmt.Printf("\nSingle-decoder-layer latency at B=%d, L=%d (near the B·L≈850 prefill transition):\n", b, l)
	for _, p := range []lia.Policy{lia.FullCPU, lia.FullGPU, lia.PartialCPU} {
		pre := lia.PolicyLatency(sys, m, lia.Prefill, p, b, l)
		dec := lia.PolicyLatency(sys, m, lia.Decode, p, b, l)
		fmt.Printf("  %s  prefill %v, decode %v\n", p, pre, dec)
	}

	// The same point on a Grace-Hopper system flips everything to the
	// GPU: NVLink-C2C removes the transfer penalty (§8).
	pre, dec := lia.OptimalPolicies(lia.GH200, m, b, l)
	fmt.Printf("\nOn GH200 the 900 GB/s CPU-GPU link flips the choice: prefill %s, decode %s\n", pre, dec)
}
