// CXL offloading: reproduce the §6 memory-offloading study at example
// scale. Installing two 128 GB CXL expanders and moving parameters there
// (KV cache stays in DDR) keeps throughput flat while freeing DDR — and
// the freed DDR admits a larger batch that raises throughput outright
// (the paper's Table 3).
package main

import (
	"fmt"
	"log"

	"github.com/lia-sim/lia"
)

func main() {
	base := lia.SPRA100
	withCXL := lia.WithCXL(base, 2)
	w := lia.Workload{Batch: 900, InputLen: 32, OutputLen: 32}

	run := func(name string, sys lia.System, wl lia.Workload, placement lia.Placement) lia.Result {
		res, err := lia.Run(lia.Config{
			Framework:          lia.LIA,
			System:             sys,
			Model:              lia.OPT30B,
			Workload:           wl,
			Placement:          placement,
			AssumeHostCapacity: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %8.1f tokens/s   DDR %v   CXL %v\n",
			name, res.Throughput, res.HostPlan.DDRUsed, res.HostPlan.CXLUsed)
		return res
	}

	fmt.Printf("OPT-30B, %s, LIA\n\n", w)
	ddrOnly := run("DDR only", base, w, lia.Placement{})
	policy := run("params->CXL (policy, §6)", withCXL, w, lia.CXLPolicyPlacement())
	run("everything->CXL (naive)", withCXL, w, lia.NaiveCXLPlacement())

	fmt.Printf("\npolicy/DDR throughput ratio: %.3f (Observation-1: parameter offloading is ~free)\n",
		policy.Throughput/ddrOnly.Throughput)
	fmt.Printf("DDR freed by the policy:     %v\n", ddrOnly.HostPlan.DDRUsed-policy.HostPlan.DDRUsed)

	// Spend the freed DDR on a bigger batch.
	bigger := w
	bigger.Batch = 1550
	big := run(fmt.Sprintf("params->CXL, B=%d", bigger.Batch), withCXL, bigger, lia.CXLPolicyPlacement())
	fmt.Printf("\nlarger-batch gain: %.2fx over the DDR-only ceiling\n", big.Throughput/ddrOnly.Throughput)
}
