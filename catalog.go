package lia

import (
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/model"
)

// Evaluation systems (Table 2, §7.6, §7.8, §8).
var (
	// SPRA100 pairs a 40-core Sapphire Rapids Xeon with a 40 GB A100
	// over PCIe 4.0 — the paper's primary testbed.
	SPRA100 = hw.SPRA100
	// SPRH100 swaps in an 80 GB H100 over PCIe 5.0.
	SPRH100 = hw.SPRH100
	// GNRA100 pairs a 128-core Granite Rapids Xeon with the A100 — the
	// cost-efficiency sweet spot of §7.8.
	GNRA100 = hw.GNRA100
	// GNRH100 is the highest-end single-GPU configuration.
	GNRH100 = hw.GNRH100
	// GH200 is the Grace-Hopper what-if platform of §8.
	GH200 = hw.GH200
	// DGXA100 is the 8-GPU NVLink baseline of §7.8.
	DGXA100 = hw.DGXA100
)

// Evaluated models.
var (
	// OPT30B, OPT66B and OPT175B are the paper's primary benchmarks.
	OPT30B  = model.OPT30B
	OPT66B  = model.OPT66B
	OPT175B = model.OPT175B
	// Llama270B, Chinchilla70B and Bloom176B cover §7.7's
	// generalizability study (Llama2 also anchors the PowerInfer
	// comparison, §7.9).
	Llama270B     = model.Llama270B
	Chinchilla70B = model.Chinchilla70B
	Bloom176B     = model.Bloom176B
)

// WithCXL returns a copy of a system with n Samsung 128 GB CXL Type-3
// expanders installed (Table 2 uses two).
func WithCXL(sys System, n int) System {
	return sys.WithCXL(n, hw.SamsungCXL128)
}

// Systems lists the built-in evaluation platforms.
func Systems() []System {
	return []System{SPRA100, SPRH100, GNRA100, GNRH100, GH200, DGXA100}
}

// Models lists the built-in architectures.
func Models() []ModelConfig { return model.Catalog() }

// ModelByName looks up a built-in architecture ("OPT-175B", …).
func ModelByName(name string) (ModelConfig, error) { return model.ByName(name) }

// SystemByName looks up a built-in platform ("SPR-A100", …).
func SystemByName(name string) (System, error) {
	for _, s := range Systems() {
		if s.Name == name {
			return s, nil
		}
	}
	return System{}, errUnknownSystem(name)
}

type errUnknownSystem string

func (e errUnknownSystem) Error() string { return "lia: unknown system \"" + string(e) + "\"" }

// Int8Variant returns a model with INT8 (1-byte) parameters: every
// operand transfer, KV-cache byte, and footprint in the analytical model
// halves. Pair with FunctionalExecutor.EnableINT8 for the numeric side.
func Int8Variant(m ModelConfig) ModelConfig { return m.Int8Variant() }

// LoadSystem reads a custom system description from a JSON file
// (optionally inheriting from a named built-in via "base"); see
// internal/hw/config.go for the schema.
func LoadSystem(path string) (System, error) { return hw.LoadSystem(path) }

// ParseSystem builds a custom system from JSON bytes.
func ParseSystem(data []byte) (System, error) { return hw.ParseSystem(data) }

// ModelsByNameMust is ModelByName for static example/tool code where the
// name is a known catalog constant; it panics on unknown names.
func ModelsByNameMust(name string) ModelConfig {
	m, err := ModelByName(name)
	if err != nil {
		panic(err)
	}
	return m
}
