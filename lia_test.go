package lia_test

import (
	"strings"
	"testing"

	"github.com/lia-sim/lia"
)

func TestQuickstartFlow(t *testing.T) {
	res, err := lia.Run(lia.Config{
		Framework: lia.LIA,
		System:    lia.SPRA100,
		Model:     lia.OPT30B,
		Workload:  lia.Workload{Batch: 1, InputLen: 512, OutputLen: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OOM || res.Latency <= 0 || res.Throughput <= 0 {
		t.Fatalf("implausible result: %+v", res)
	}
}

func TestFrameworkComparisonThroughAPI(t *testing.T) {
	w := lia.Workload{Batch: 1, InputLen: 256, OutputLen: 32}
	var latencies []lia.Seconds
	for _, fw := range []lia.Framework{lia.LIA, lia.IPEX, lia.FlexGen} {
		res, err := lia.Run(lia.Config{Framework: fw, System: lia.SPRA100, Model: lia.OPT30B, Workload: w})
		if err != nil {
			t.Fatal(err)
		}
		latencies = append(latencies, res.Latency)
	}
	if latencies[0] >= latencies[1] || latencies[0] >= latencies[2] {
		t.Errorf("LIA should lead: %v", latencies)
	}
}

func TestOptimalPolicies(t *testing.T) {
	pre, dec := lia.OptimalPolicies(lia.SPRA100, lia.OPT175B, 1, 64)
	if pre != lia.FullCPU || dec != lia.FullCPU {
		t.Errorf("small-shape policies = %s / %s, want full CPU", pre, dec)
	}
	pre, _ = lia.OptimalPolicies(lia.SPRA100, lia.OPT175B, 64, 1024)
	if pre != lia.FullGPU {
		t.Errorf("large-shape prefill = %s, want full GPU", pre)
	}
}

func TestPolicyLatencyAndParse(t *testing.T) {
	p, err := lia.ParsePolicy("(0,1,1,0,0,0)")
	if err != nil {
		t.Fatal(err)
	}
	if p != lia.PartialCPU {
		t.Errorf("parsed %s", p)
	}
	lat := lia.PolicyLatency(lia.SPRA100, lia.OPT175B, lia.Decode, p, 32, 512)
	if lat <= 0 {
		t.Errorf("latency = %v", lat)
	}
}

func TestCatalogLookups(t *testing.T) {
	if len(lia.Systems()) < 6 || len(lia.Models()) < 8 {
		t.Error("catalog too small")
	}
	if _, err := lia.SystemByName("SPR-A100"); err != nil {
		t.Error(err)
	}
	if _, err := lia.SystemByName("TPU-pod"); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Errorf("bad error: %v", err)
	}
	if _, err := lia.ModelByName("OPT-175B"); err != nil {
		t.Error(err)
	}
}

func TestCXLThroughAPI(t *testing.T) {
	sys := lia.WithCXL(lia.SPRA100, 2)
	res, err := lia.Run(lia.Config{
		Framework: lia.LIA,
		System:    sys,
		Model:     lia.OPT30B,
		Workload:  lia.Workload{Batch: 900, InputLen: 32, OutputLen: 32},
		Placement: lia.CXLPolicyPlacement(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.HostPlan.CXLUsed <= 0 {
		t.Error("CXL placement did not move anything")
	}
}

func TestFunctionalEngineThroughAPI(t *testing.T) {
	m, err := lia.NewFunctionalModel(lia.TinyModelConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := lia.NewFunctionalExecutor(m, lia.FullGPU).Generate([]int{1, 2, 3}, 8)
	if err != nil {
		t.Fatal(err)
	}
	got, err := lia.NewFunctionalExecutor(m, lia.PartialCPU).Generate([]int{1, 2, 3}, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatal("offloading changed the generated tokens")
		}
	}
}

func TestServingThroughAPI(t *testing.T) {
	gen, err := lia.NewTraceGenerator(lia.TraceConversation, 32, 128, 3)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := lia.PoissonArrivals(gen, 8, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := lia.ServeConfig{
		System: lia.SPRA100, Model: lia.OPT30B, Framework: lia.LIA,
		MaxBatch: 4, MaxWait: 1, AssumeHostCapacity: true,
	}
	static, err := lia.Serve(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	cont, err := lia.ServeContinuous(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if static.Completed != 8 || cont.Completed != 8 {
		t.Errorf("completed %d / %d, want 8 each", static.Completed, cont.Completed)
	}
}

func TestSpeculativeThroughAPI(t *testing.T) {
	res, err := lia.EstimateSpeculative(lia.SpeculativeConfig{
		System: lia.SPRA100, Target: lia.OPT175B,
		Draft: lia.TinyModelConfig(), Gamma: 4, Acceptance: 0.8,
		Batch: 1, Context: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup <= 1 {
		t.Errorf("speedup = %.2f", res.Speedup)
	}
}

func TestInt8VariantThroughAPI(t *testing.T) {
	v := lia.Int8Variant(lia.OPT30B)
	if v.BytesPerParam != 1 {
		t.Error("variant not INT8")
	}
}

func TestCustomSystemThroughAPI(t *testing.T) {
	sys, err := lia.ParseSystem([]byte(`{"name":"api-box","base":"GNR-A100"}`))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Name != "api-box" {
		t.Errorf("name = %q", sys.Name)
	}
	if _, err := lia.LoadSystem("/nonexistent.json"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestTinyLlamaThroughAPI(t *testing.T) {
	m, err := lia.NewFunctionalModel(lia.TinyLlamaConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := lia.NewFunctionalExecutor(m, lia.FullCPU).Generate([]int{3, 4}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 {
		t.Errorf("generated %d tokens", len(out))
	}
}

func TestNaivePlacementThroughAPI(t *testing.T) {
	sys := lia.WithCXL(lia.SPRA100, 2)
	res, err := lia.Run(lia.Config{
		Framework: lia.LIA, System: sys, Model: lia.OPT30B,
		Workload:  lia.Workload{Batch: 64, InputLen: 32, OutputLen: 16},
		Placement: lia.NaiveCXLPlacement(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.HostPlan.DDRUsed != 0 {
		t.Error("naive placement should leave DDR empty")
	}
}

func TestZeROThroughAPI(t *testing.T) {
	res, err := lia.Run(lia.Config{
		Framework: lia.ZeROInference, System: lia.SPRA100, Model: lia.OPT30B,
		Workload: lia.Workload{Batch: 1, InputLen: 128, OutputLen: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OOM || res.Latency <= 0 {
		t.Errorf("bad result: %+v", res)
	}
}
