module github.com/lia-sim/lia

go 1.22
