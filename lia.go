// Package lia is a Go reproduction of "LIA: A Single-GPU LLM Inference
// Acceleration with Cooperative AMX-Enabled CPU-GPU Computation and CXL
// Offloading" (ISCA 2025).
//
// The library estimates end-to-end LLM inference performance on
// CPU-GPU systems with AMX-class matrix engines and optional CXL memory
// expanders, and implements the paper's contribution — the compute-
// offloading optimizer over the six decoder sublayers (Equations 1–9) —
// together with every baseline it is compared against (IPEX, FlexGen,
// PowerInfer, 8-way tensor-parallel multi-GPU).
//
// Three layers of fidelity are provided:
//
//   - Analytical: calibrated roofline models of SPR/GNR AMX, AVX-512, and
//     P100–H100 GPUs reproduce the §4 microbenchmarks; Run estimates
//     latency, throughput, energy, and memory placement for any workload.
//   - Scheduled: an event-driven execution back-end times Optimization-1
//     (GPU-memory pinning) and Optimization-2 (compute/transfer overlap)
//     schedules exactly.
//   - Functional: a real transformer (package-internal AMX tile emulator
//     for CPU-offloaded sublayers, dense kernels for GPU ones) proves the
//     routed dataflow executes and is numerically policy-invariant.
//
// Quickstart:
//
//	res, err := lia.Run(lia.Config{
//	    Framework: lia.LIA,
//	    System:    lia.SPRA100,
//	    Model:     lia.OPT30B,
//	    Workload:  lia.Workload{Batch: 1, InputLen: 512, OutputLen: 32},
//	})
//	fmt.Println(res.Latency, res.Throughput, res.DecodePolicy)
package lia

import (
	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/cxl"
	"github.com/lia-sim/lia/internal/engine"
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/spec"
	"github.com/lia-sim/lia/internal/trace"
	"github.com/lia-sim/lia/internal/units"
)

// Core configuration and result types.
type (
	// Config specifies one inference estimate: framework, system, model,
	// workload, optional CXL placement and ablation switches.
	Config = engine.Config
	// Result is an end-to-end estimate (latency, throughput, energy,
	// breakdown, memory plan, chosen policies).
	Result = engine.Result
	// Framework selects the inference stack being modeled.
	Framework = engine.Framework
	// Ablation disables individual LIA optimizations (Table 4).
	Ablation = engine.Ablation
	// Workload is the (B, L_in, L_out) shape.
	Workload = trace.Workload
	// System describes a hardware platform (CPU, GPU, link, CXL).
	System = hw.System
	// ModelConfig describes a transformer architecture.
	ModelConfig = model.Config
	// Policy is the offloading vector p ∈ {0,1}⁶ (true = CPU).
	Policy = core.Policy
	// Stage distinguishes prefill from decode.
	Stage = model.Stage
	// Placement assigns host data classes to DDR or CXL.
	Placement = cxl.Placement
	// Seconds is the time unit used throughout.
	Seconds = units.Seconds
)

// Frameworks the paper compares.
const (
	// LIA is the paper's framework.
	LIA = engine.LIA
	// IPEX is the CPU-only AMX baseline.
	IPEX = engine.IPEX
	// FlexGen is the offloading baseline (AVX CPU kernels).
	FlexGen = engine.FlexGen
	// PowerInfer is the hot/cold neuron-split baseline.
	PowerInfer = engine.PowerInfer
	// MultiGPU is 8-way tensor parallelism on a DGX.
	MultiGPU = engine.MultiGPU
	// ZeROInference is DeepSpeed-style pure data offloading.
	ZeROInference = engine.ZeROInference
)

// Stages.
const (
	// Prefill is the prompt-processing (Sum) stage.
	Prefill = model.Prefill
	// Decode is the token-generation (Gen) stage.
	Decode = model.Decode
)

// Canonical offloading policies (§7.1).
var (
	// FullGPU computes everything on the GPU: (0,0,0,0,0,0).
	FullGPU = core.FullGPU
	// FullCPU offloads everything to the CPU: (1,1,1,1,1,1).
	FullCPU = core.FullCPU
	// PartialCPU offloads attention scoring only: (0,1,1,0,0,0).
	PartialCPU = core.PartialCPU
)

// Run estimates one configuration end to end.
func Run(cfg Config) (Result, error) { return engine.Run(cfg) }

// OptimalPolicies solves Eq. (1) for both stages at a workload point —
// the decision Figure 9 maps over (B, L).
func OptimalPolicies(sys System, m ModelConfig, b, l int) (prefill, decode Policy) {
	env := core.NewEnv(sys, m)
	pair := core.OptimalPair(env, b, l)
	return pair.Prefill, pair.Decode
}

// PolicyLatency evaluates the Eq. (2) single-decoder-layer latency of a
// given policy (non-overlapped), useful for exploring the policy space.
func PolicyLatency(sys System, m ModelConfig, stage Stage, p Policy, b, l int) Seconds {
	env := core.NewEnv(sys, m)
	t, _ := core.LayerLatency(env, stage, p, b, l)
	return t
}

// ParsePolicy parses the paper's "(0,1,1,0,0,0)" notation.
func ParsePolicy(s string) (Policy, error) { return core.ParsePolicy(s) }

// CXLPolicyPlacement returns the §6 memory-offloading policy: parameters
// in CXL, KV cache and activations in DDR.
func CXLPolicyPlacement() Placement { return cxl.PolicyPlacement() }

// NaiveCXLPlacement puts every host data class in CXL — the oblivious
// baseline Observation-2 warns against.
func NaiveCXLPlacement() Placement { return cxl.NaivePlacement() }

// SpeculativeConfig parameterizes a speculative-decoding estimate: a
// GPU-resident draft model proposing tokens for an offloaded target.
type SpeculativeConfig = spec.Config

// SpeculativeResult reports the per-round breakdown and the speedup over
// plain decoding.
type SpeculativeResult = spec.Result

// EstimateSpeculative prices speculative decoding at an operating point.
// Batched verification amortizes the parameter movement that dominates
// offloaded decoding, so speculation and offloading compound.
func EstimateSpeculative(cfg SpeculativeConfig) (SpeculativeResult, error) {
	return spec.Estimate(cfg)
}
