package lia_test

import (
	"fmt"

	"github.com/lia-sim/lia"
)

// ExampleRun estimates OPT-30B online inference on the paper's primary
// testbed and reports the offloading decisions LIA made.
func ExampleRun() {
	res, err := lia.Run(lia.Config{
		Framework: lia.LIA,
		System:    lia.SPRA100,
		Model:     lia.OPT30B,
		Workload:  lia.Workload{Batch: 1, InputLen: 512, OutputLen: 32},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("prefill policy:", res.PrefillPolicy)
	fmt.Println("KV cache on GPU:", res.KVOnGPU)
	// Output:
	// prefill policy: (0,0,0,0,0,0)
	// KV cache on GPU: true
}

// ExampleOptimalPolicies shows the Figure 9 decision at two workload
// points: small shapes go to the CPU, large prefills to the GPU.
func ExampleOptimalPolicies() {
	pre, dec := lia.OptimalPolicies(lia.SPRA100, lia.OPT175B, 1, 64)
	fmt.Println("B=1, L=64:", pre, dec)
	pre, dec = lia.OptimalPolicies(lia.SPRA100, lia.OPT175B, 64, 1024)
	fmt.Println("B=64, L=1024:", pre, dec)
	// Output:
	// B=1, L=64: (1,1,1,1,1,1) (1,1,1,1,1,1)
	// B=64, L=1024: (0,0,0,0,0,0) (1,1,1,1,1,1)
}

// ExampleParsePolicy round-trips the paper's vector notation.
func ExampleParsePolicy() {
	p, _ := lia.ParsePolicy("(0,1,1,0,0,0)")
	fmt.Println(p == lia.PartialCPU)
	// Output:
	// true
}

// ExampleNewFunctionalExecutor proves policy invariance on the runnable
// transformer: CPU-offloaded sublayers execute through the emulated AMX
// tile pipeline, yet greedy decoding matches the all-GPU reference.
func ExampleNewFunctionalExecutor() {
	m, _ := lia.NewFunctionalModel(lia.TinyModelConfig(), 24)
	ref, _ := lia.NewFunctionalExecutor(m, lia.FullGPU).Generate([]int{12, 7, 88}, 6)
	cpu, _ := lia.NewFunctionalExecutor(m, lia.FullCPU).Generate([]int{12, 7, 88}, 6)
	same := true
	for i := range ref {
		same = same && ref[i] == cpu[i]
	}
	fmt.Println("tokens match:", same)
	// Output:
	// tokens match: true
}

// ExampleWithCXL applies the §6 memory-offloading policy: parameters go
// to two interleaved CXL expanders, the KV cache stays in DDR, and
// throughput is unaffected.
func ExampleWithCXL() {
	sys := lia.WithCXL(lia.SPRA100, 2)
	res, _ := lia.Run(lia.Config{
		Framework: lia.LIA,
		System:    sys,
		Model:     lia.OPT30B,
		Workload:  lia.Workload{Batch: 900, InputLen: 32, OutputLen: 32},
		Placement: lia.CXLPolicyPlacement(),
	})
	fmt.Println("parameters offloaded:", res.HostPlan.CXLUsed == lia.OPT30B.ParamBytes())
	// Output:
	// parameters offloaded: true
}
