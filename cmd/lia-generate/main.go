// Command lia-generate runs the functional transformer end to end: real
// BF16/INT8 math with CPU-offloaded sublayers executing through the
// emulated AMX tile pipeline. It is the zero-to-tokens proof that the
// offloading dataflow works — and that the policy never changes greedy
// output.
//
//	lia-generate -policy "(0,1,1,0,0,0)" -tokens 24
//	lia-generate -arch llama -int8 -topk 10 -temperature 0.9
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/lia-sim/lia"
	"github.com/lia-sim/lia/internal/llm"
)

func main() {
	var (
		arch      = flag.String("arch", "opt", "tiny architecture: opt (MHA+ReLU) or llama (GQA+SwiGLU)")
		policyStr = flag.String("policy", "(0,1,1,0,0,0)", "offloading vector, e.g. (1,1,1,1,1,1)")
		seed      = flag.Int64("seed", 24, "weight seed")
		promptStr = flag.String("prompt", "12,7,88,3,41", "comma-separated prompt token IDs")
		tokens    = flag.Int("tokens", 16, "tokens to generate")
		int8Mode  = flag.Bool("int8", false, "quantize parameter sublayers to INT8 (TDPBUSD path)")
		topK      = flag.Int("topk", 0, "top-K sampling (0 = greedy)")
		temp      = flag.Float64("temperature", 1.0, "sampling temperature")
		sampleSd  = flag.Int64("sample-seed", 1, "sampling seed")
		savePath  = flag.String("save", "", "write the model to this checkpoint file after building it")
		loadPath  = flag.String("load", "", "load the model from a checkpoint instead of generating weights")
		text      = flag.String("text", "", "text prompt: trains a byte-level BPE tokenizer and decodes the output back to text")
	)
	flag.Parse()

	cfg := lia.TinyModelConfig()
	if strings.EqualFold(*arch, "llama") {
		cfg = lia.TinyLlamaConfig()
	}
	policy, err := lia.ParsePolicy(*policyStr)
	if err != nil {
		fatal(err)
	}
	var prompt []int
	var tokenizer *lia.Tokenizer
	if *text != "" {
		// Text mode: a BPE tokenizer over a small built-in corpus plus the
		// prompt itself, and a model whose vocabulary matches it.
		var err error
		tokenizer, err = lia.TrainTokenizer(trainingCorpus+*text, 384)
		if err != nil {
			fatal(err)
		}
		cfg.VocabSize = tokenizer.VocabSize()
		prompt = tokenizer.Encode(*text)
	} else {
		for _, part := range strings.Split(*promptStr, ",") {
			tok, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fatal(fmt.Errorf("bad prompt token %q: %w", part, err))
			}
			prompt = append(prompt, tok)
		}
	}

	var m *lia.FunctionalModel
	var err2 error
	if *loadPath != "" {
		m, err2 = lia.LoadModel(*loadPath)
	} else {
		m, err2 = lia.NewFunctionalModel(cfg, *seed)
	}
	if err2 != nil {
		fatal(err2)
	}
	cfg = m.Cfg
	if *savePath != "" {
		if err := lia.SaveModel(*savePath, m); err != nil {
			fatal(err)
		}
	}
	exe := lia.NewFunctionalExecutor(m, policy)
	if *int8Mode {
		exe.EnableINT8()
	}
	var sampler llm.Sampler = llm.GreedySampler{}
	mode := "greedy"
	if *topK > 0 {
		sampler, err = llm.NewTopKSampler(*topK, *temp, *sampleSd)
		if err != nil {
			fatal(err)
		}
		mode = fmt.Sprintf("top-%d @ T=%.2f", *topK, *temp)
	}

	out, err := exe.GenerateWith(prompt, *tokens, sampler)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s (%d layers, d=%d, %d heads / %d KV heads), policy %s, %s decoding\n",
		cfg.Name, cfg.Layers, cfg.DModel, cfg.Heads, cfg.KVHeads, policy, mode)
	fmt.Printf("prompt : %v\n", prompt)
	fmt.Printf("output : %v\n", out)
	if tokenizer != nil {
		decoded, err := tokenizer.Decode(out)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("text   : %q (random weights — structure, not sense)\n", decoded)
	}
	fmt.Printf("kernels: %d AMX BF16 matmuls, %d AMX INT8 matmuls, %d dense matmuls (%d tile cycles)\n",
		exe.Stats.CPUMatmuls, exe.Stats.Int8Matmuls, exe.Stats.GPUMatmuls, exe.Stats.AMXCycles)
}

// trainingCorpus seeds the text-mode tokenizer; any prose works — merges
// just need repeated substrings.
const trainingCorpus = `the quick brown fox jumps over the lazy dog.
large language models generate tokens one at a time. the key value cache
grows with the sequence. parameters stream over the interconnect when the
model does not fit. offloading moves computation to the processor with
the data. `

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lia-generate:", err)
	os.Exit(1)
}
