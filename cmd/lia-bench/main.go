// Command lia-bench regenerates the paper's tables and figures. Each
// experiment prints as an aligned ASCII table; -csv switches to CSV.
// Experiments and their cells run on the internal/runner worker pool:
// parallel by default, with results printed in deterministic ID order
// (byte-identical to a sequential run). -j bounds the workers; -j 1
// restores fully sequential execution.
//
//	lia-bench               # run everything
//	lia-bench -exp fig9     # one experiment
//	lia-bench -j 1          # sequential
//	lia-bench -list         # list experiment IDs
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/lia-sim/lia/internal/engine"
	"github.com/lia-sim/lia/internal/experiments"
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/report"
	"github.com/lia-sim/lia/internal/runner"
)

// renderable is anything the report package can print.
type renderable interface {
	String() string
	CSV() string
	Markdown() string
}

// experimentsByID maps experiment IDs to generators. Each generator may
// return several tables/figures.
var experimentsByID = map[string]func() []renderable{
	"fig1": func() []renderable { return []renderable{experiments.Figure1()} },
	"fig3": func() []renderable { return []renderable{experiments.Figure3()} },
	"fig4": func() []renderable { return []renderable{experiments.Figure4()} },
	"fig5": func() []renderable {
		gemm, gemv := experiments.Figure5()
		return []renderable{gemm, gemv}
	},
	"fig7": func() []renderable {
		pre, dec := experiments.Figure7()
		return []renderable{pre, dec}
	},
	"fig8": func() []renderable {
		a, b := experiments.Figure8()
		return []renderable{a, b}
	},
	"fig9": func() []renderable {
		var out []renderable
		for _, sys := range []hw.System{hw.SPRA100, hw.SPRH100} {
			pre, dec := experiments.Figure9(sys)
			out = append(out, pre, dec)
		}
		return out
	},
	"fig10": func() []renderable { return figsToRenderables(experiments.Figure10()) },
	"fig11": func() []renderable { return figsToRenderables(experiments.Figure11()) },
	"fig12": func() []renderable { return []renderable{experiments.Figure12()} },
	"fig13": func() []renderable {
		a, b := experiments.Figure13()
		return []renderable{a, b}
	},
	"fig14": func() []renderable {
		a, b := experiments.Figure14()
		return []renderable{a, b}
	},
	"fig15": func() []renderable {
		a, b := experiments.Figure15()
		return []renderable{a, b}
	},
	"tab1": func() []renderable { return []renderable{experiments.Table1(180, 512)} },
	"tab3": func() []renderable { return []renderable{experiments.Table3()} },
	"tab4": func() []renderable { return []renderable{experiments.Table4()} },
	"tab5": func() []renderable { return []renderable{experiments.Table5()} },
	"tab6": func() []renderable { return []renderable{experiments.Table6()} },
	"generalize": func() []renderable {
		return []renderable{experiments.Generalizability()}
	},
	"quant": func() []renderable {
		return []renderable{experiments.QuantizationStudy()}
	},
	"scaling": func() []renderable {
		return []renderable{experiments.MultiGPUScaling()}
	},
	"ablations": func() []renderable {
		return []renderable{experiments.ModelingAblations()}
	},
	"moe": func() []renderable {
		return []renderable{experiments.MoEAdaptability()}
	},
	"speculative": func() []renderable {
		return []renderable{experiments.SpeculativeDecoding()}
	},
	"storage": func() []renderable {
		return []renderable{experiments.StorageTiers()}
	},
	"parallelism": func() []renderable {
		return []renderable{experiments.ParallelismComparison()}
	},
	"discussion": func() []renderable {
		return []renderable{experiments.GraceHopper(), experiments.CheaperGPUs(), experiments.CXLCostSavings()}
	},
}

func figsToRenderables(figs []*report.Figure) []renderable {
	out := make([]renderable, len(figs))
	for i, f := range figs {
		out[i] = f
	}
	return out
}

// renderMode selects the output format.
type renderMode int

const (
	modeTable renderMode = iota
	modeCSV
	modeMarkdown
)

// experimentOutput is one experiment's fully rendered result: the text
// blocks to print in order, and the raw CSVs for -out.
type experimentOutput struct {
	id     string
	blocks []string
	csvs   []string
}

// renderExperiments evaluates the selected experiments on the runner
// worker pool — whole experiments fan out, and each experiment's cells
// fan out again inside internal/experiments — and returns the rendered
// outputs in input order, so printing is byte-identical to a sequential
// run regardless of worker count.
func renderExperiments(selected []string, mode renderMode) ([]experimentOutput, error) {
	return runner.Map(context.Background(), selected, func(_ context.Context, id string) (experimentOutput, error) {
		gen, ok := experimentsByID[id]
		if !ok {
			return experimentOutput{}, fmt.Errorf("unknown experiment %q", id)
		}
		out := experimentOutput{id: id}
		for _, r := range gen() {
			var block string
			switch mode {
			case modeCSV:
				block = r.CSV()
			case modeMarkdown:
				block = r.Markdown()
			default:
				block = r.String()
			}
			out.blocks = append(out.blocks, block)
			out.csvs = append(out.csvs, r.CSV())
		}
		return out, nil
	})
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment ID (see -list) or 'all'")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		markdown = flag.Bool("markdown", false, "emit GitHub-flavored markdown tables")
		outDir   = flag.String("out", "", "also write each experiment's CSV to <out>/<id>-<n>.csv")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		workers  = flag.Int("j", 0, "worker count for experiments and cells (0 = GOMAXPROCS, 1 = sequential)")
		stats    = flag.Bool("stats", false, "print engine-cache statistics to stderr after the run")
	)
	flag.Parse()
	runner.SetWorkers(*workers)

	ids := make([]string, 0, len(experimentsByID))
	for id := range experimentsByID {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	if *list {
		fmt.Println(strings.Join(ids, "\n"))
		return
	}

	var selected []string
	if *exp == "all" {
		selected = ids
	} else {
		if _, ok := experimentsByID[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "lia-bench: unknown experiment %q (use -list)\n", *exp)
			os.Exit(1)
		}
		selected = []string{*exp}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "lia-bench: %v\n", err)
			os.Exit(1)
		}
	}

	mode := modeTable
	switch {
	case *csv:
		mode = modeCSV
	case *markdown:
		mode = modeMarkdown
	}
	outputs, err := renderExperiments(selected, mode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lia-bench: %v\n", err)
		os.Exit(1)
	}
	for _, out := range outputs {
		fmt.Printf("==== %s ====\n", out.id)
		for i, block := range out.blocks {
			fmt.Println(block)
			if *outDir != "" {
				path := filepath.Join(*outDir, fmt.Sprintf("%s-%d.csv", out.id, i))
				if err := os.WriteFile(path, []byte(out.csvs[i]), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "lia-bench: %v\n", err)
					os.Exit(1)
				}
			}
		}
	}
	if *stats {
		calls, distinct := engine.RunCacheStats()
		fmt.Fprintf(os.Stderr, "lia-bench: %d engine cells requested, %d computed (%d deduplicated), %d workers\n",
			calls, distinct, calls-distinct, runner.Workers())
	}
}
