// Command lia-bench regenerates the paper's tables and figures. Each
// experiment prints as an aligned ASCII table; -csv switches to CSV.
//
//	lia-bench               # run everything
//	lia-bench -exp fig9     # one experiment
//	lia-bench -list         # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/lia-sim/lia/internal/experiments"
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/report"
)

// renderable is anything the report package can print.
type renderable interface {
	String() string
	CSV() string
	Markdown() string
}

// experimentsByID maps experiment IDs to generators. Each generator may
// return several tables/figures.
var experimentsByID = map[string]func() []renderable{
	"fig1": func() []renderable { return []renderable{experiments.Figure1()} },
	"fig3": func() []renderable { return []renderable{experiments.Figure3()} },
	"fig4": func() []renderable { return []renderable{experiments.Figure4()} },
	"fig5": func() []renderable {
		gemm, gemv := experiments.Figure5()
		return []renderable{gemm, gemv}
	},
	"fig7": func() []renderable {
		pre, dec := experiments.Figure7()
		return []renderable{pre, dec}
	},
	"fig8": func() []renderable {
		a, b := experiments.Figure8()
		return []renderable{a, b}
	},
	"fig9": func() []renderable {
		var out []renderable
		for _, sys := range []hw.System{hw.SPRA100, hw.SPRH100} {
			pre, dec := experiments.Figure9(sys)
			out = append(out, pre, dec)
		}
		return out
	},
	"fig10": func() []renderable { return figsToRenderables(experiments.Figure10()) },
	"fig11": func() []renderable { return figsToRenderables(experiments.Figure11()) },
	"fig12": func() []renderable { return []renderable{experiments.Figure12()} },
	"fig13": func() []renderable {
		a, b := experiments.Figure13()
		return []renderable{a, b}
	},
	"fig14": func() []renderable {
		a, b := experiments.Figure14()
		return []renderable{a, b}
	},
	"fig15": func() []renderable {
		a, b := experiments.Figure15()
		return []renderable{a, b}
	},
	"tab1": func() []renderable { return []renderable{experiments.Table1(180, 512)} },
	"tab3": func() []renderable { return []renderable{experiments.Table3()} },
	"tab4": func() []renderable { return []renderable{experiments.Table4()} },
	"tab5": func() []renderable { return []renderable{experiments.Table5()} },
	"tab6": func() []renderable { return []renderable{experiments.Table6()} },
	"generalize": func() []renderable {
		return []renderable{experiments.Generalizability()}
	},
	"quant": func() []renderable {
		return []renderable{experiments.QuantizationStudy()}
	},
	"scaling": func() []renderable {
		return []renderable{experiments.MultiGPUScaling()}
	},
	"ablations": func() []renderable {
		return []renderable{experiments.ModelingAblations()}
	},
	"moe": func() []renderable {
		return []renderable{experiments.MoEAdaptability()}
	},
	"speculative": func() []renderable {
		return []renderable{experiments.SpeculativeDecoding()}
	},
	"storage": func() []renderable {
		return []renderable{experiments.StorageTiers()}
	},
	"parallelism": func() []renderable {
		return []renderable{experiments.ParallelismComparison()}
	},
	"discussion": func() []renderable {
		return []renderable{experiments.GraceHopper(), experiments.CheaperGPUs(), experiments.CXLCostSavings()}
	},
}

func figsToRenderables(figs []*report.Figure) []renderable {
	out := make([]renderable, len(figs))
	for i, f := range figs {
		out[i] = f
	}
	return out
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment ID (see -list) or 'all'")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		markdown = flag.Bool("markdown", false, "emit GitHub-flavored markdown tables")
		outDir   = flag.String("out", "", "also write each experiment's CSV to <out>/<id>-<n>.csv")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	ids := make([]string, 0, len(experimentsByID))
	for id := range experimentsByID {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	if *list {
		fmt.Println(strings.Join(ids, "\n"))
		return
	}

	var selected []string
	if *exp == "all" {
		selected = ids
	} else {
		if _, ok := experimentsByID[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "lia-bench: unknown experiment %q (use -list)\n", *exp)
			os.Exit(1)
		}
		selected = []string{*exp}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "lia-bench: %v\n", err)
			os.Exit(1)
		}
	}
	for _, id := range selected {
		fmt.Printf("==== %s ====\n", id)
		for i, r := range experimentsByID[id]() {
			switch {
			case *csv:
				fmt.Println(r.CSV())
			case *markdown:
				fmt.Println(r.Markdown())
			default:
				fmt.Println(r.String())
			}
			if *outDir != "" {
				path := filepath.Join(*outDir, fmt.Sprintf("%s-%d.csv", id, i))
				if err := os.WriteFile(path, []byte(r.CSV()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "lia-bench: %v\n", err)
					os.Exit(1)
				}
			}
		}
	}
}
