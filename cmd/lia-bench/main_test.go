package main

import (
	"strings"
	"testing"

	"github.com/lia-sim/lia/internal/runner"
)

// render joins an experiment run's output exactly as main prints it.
func render(t *testing.T, ids []string, mode renderMode) string {
	t.Helper()
	outputs, err := renderExperiments(ids, mode)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, out := range outputs {
		b.WriteString("==== " + out.id + " ====\n")
		for _, block := range out.blocks {
			b.WriteString(block + "\n")
		}
	}
	return b.String()
}

// TestTab5ByteIdenticalAcrossRuns: the ISSUE's determinism gate —
// `lia-bench -exp tab5` must produce byte-identical output across two
// runs with the parallel runner active.
func TestTab5ByteIdenticalAcrossRuns(t *testing.T) {
	runner.SetWorkers(8)
	defer runner.SetWorkers(0)
	a := render(t, []string{"tab5"}, modeTable)
	b := render(t, []string{"tab5"}, modeTable)
	if a != b {
		t.Fatalf("tab5 output diverged across runs:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
	if !strings.Contains(a, "Table 5") {
		t.Fatalf("unexpected tab5 output:\n%s", a)
	}
}

// TestParallelMatchesSequential: a multi-experiment selection renders
// byte-identically under -j 1 and -j 8.
func TestParallelMatchesSequential(t *testing.T) {
	ids := []string{"tab3", "tab4", "tab5", "quant", "scaling"}
	runner.SetWorkers(1)
	seq := render(t, ids, modeTable)
	runner.SetWorkers(8)
	defer runner.SetWorkers(0)
	par := render(t, ids, modeTable)
	if seq != par {
		t.Fatal("parallel output differs from sequential output")
	}
}

// TestUnknownExperimentErrors: renderExperiments surfaces bad IDs.
func TestUnknownExperimentErrors(t *testing.T) {
	if _, err := renderExperiments([]string{"nope"}, modeTable); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}
