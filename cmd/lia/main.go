// Command lia estimates end-to-end LLM inference performance for one
// configuration: a framework (LIA, IPEX, FlexGen, PowerInfer, MultiGPU),
// a system, a model, and a workload shape.
//
// Example:
//
//	lia -framework LIA -system SPR-A100 -model OPT-30B -batch 64 -lin 256 -lout 32
//	lia -framework LIA -system SPR-A100 -model OPT-30B -batch 900 -lin 32 -lout 32 -cxl 2 -cxl-params
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/lia-sim/lia"
	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/exec"
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/report"
)

func main() {
	var (
		frameworkName = flag.String("framework", "LIA", "framework: LIA, IPEX, FlexGen, PowerInfer, MultiGPU, ZeRO")
		systemName    = flag.String("system", "SPR-A100", "system: SPR-A100, SPR-H100, GNR-A100, GNR-H100, GH200, DGX-A100")
		modelName     = flag.String("model", "OPT-30B", "model name, e.g. OPT-30B, OPT-175B, Llama2-70B")
		batch         = flag.Int("batch", 1, "batch size B")
		lin           = flag.Int("lin", 512, "input token length L_in")
		lout          = flag.Int("lout", 32, "output token length L_out")
		cxlCount      = flag.Int("cxl", 0, "number of 128 GB CXL expanders to install")
		cxlParams     = flag.Bool("cxl-params", false, "place parameters in CXL (the §6 policy)")
		assume        = flag.Bool("assume-capacity", false, "skip the host-memory OOM check (the paper's latency-model mode)")
		showTrace     = flag.Bool("trace", false, "print an ASCII Gantt of one decode step's schedule (LIA only)")
		systemFile    = flag.String("system-file", "", "JSON system description (overrides -system; see internal/hw/config.go for the schema)")
	)
	flag.Parse()

	fw, err := parseFramework(*frameworkName)
	if err != nil {
		fatal(err)
	}
	var sys lia.System
	if *systemFile != "" {
		sys, err = hw.LoadSystem(*systemFile)
	} else {
		sys, err = lia.SystemByName(*systemName)
	}
	if err != nil {
		fatal(err)
	}
	m, err := lia.ModelByName(*modelName)
	if err != nil {
		fatal(err)
	}
	if *cxlCount > 0 {
		sys = lia.WithCXL(sys, *cxlCount)
	}
	cfg := lia.Config{
		Framework:          fw,
		System:             sys,
		Model:              m,
		Workload:           lia.Workload{Batch: *batch, InputLen: *lin, OutputLen: *lout},
		AssumeHostCapacity: *assume,
	}
	if *cxlParams {
		cfg.Placement = lia.CXLPolicyPlacement()
	}

	res, err := lia.Run(cfg)
	if err != nil {
		fatal(err)
	}
	if res.OOM {
		fmt.Printf("%s on %s with %s (%s): OOM — %s\n", fw, sys.Name, m.Name, cfg.Workload, res.OOMReason)
		os.Exit(2)
	}
	fmt.Printf("%s on %s, %s, %s\n", fw, sys.Name, m.Name, cfg.Workload)
	fmt.Printf("  prefill latency : %v\n", res.PrefillLatency)
	fmt.Printf("  decode latency  : %v\n", res.DecodeLatency)
	fmt.Printf("  total latency   : %v (s/query)\n", res.Latency)
	fmt.Printf("  throughput      : %.2f tokens/s\n", res.Throughput)
	fmt.Printf("  energy/token    : %v\n", res.EnergyPerToken)
	fmt.Printf("  prefill policy  : %s\n", res.PrefillPolicy)
	fmt.Printf("  decode policy   : %s\n", res.DecodePolicy)
	fmt.Printf("  pinned layers   : %d/%d (KV on GPU: %v)\n", res.PinnedLayers, m.Layers, res.KVOnGPU)
	fmt.Printf("  busy times      : CPU %v, GPU %v, PCIe %v\n", res.Breakdown.CPU, res.Breakdown.GPU, res.Breakdown.Comm)
	fmt.Printf("  host memory     : %s\n", res.HostPlan)

	if *showTrace && fw == lia.LIA {
		printTrace(cfg, res)
	}
}

// printTrace renders one decode step's overlapped schedule (Figure 7) for
// the policy the run chose, limited to the first few layers for
// readability.
func printTrace(cfg lia.Config, res lia.Result) {
	env := core.NewEnvWithPlacement(cfg.System, cfg.Model, cfg.Placement)
	layers := cfg.Model.Layers
	if layers > 6 {
		layers = 6
	}
	// Show both pinned and streamed layers in the window when the real
	// plan has a mix.
	pinned := res.PinnedLayers
	if pinned > layers/2 && res.PinnedLayers < cfg.Model.Layers {
		pinned = layers / 2
	}
	if pinned > layers {
		pinned = layers
	}
	plan := exec.Plan{
		Env:          env,
		Policy:       res.DecodePolicy,
		Opt:          core.Options{KVOnGPU: res.KVOnGPU},
		Layers:       layers,
		PinnedLayers: pinned,
		Overlap:      true,
		MiniBatches:  1,
	}
	_, entries, err := plan.TraceStage(model.Decode, cfg.Workload.Batch, cfg.Workload.InputLen)
	if err != nil {
		fatal(err)
	}
	rows := make([]report.GanttRow, 0, len(entries))
	for _, e := range entries {
		if e.Finish == e.Start {
			continue // skip zero-cost tasks for readability
		}
		rows = append(rows, report.GanttRow{
			Label: e.ID, Lane: e.Resource,
			Start: float64(e.Start), Finish: float64(e.Finish),
		})
	}
	fmt.Println()
	fmt.Print(report.Gantt(fmt.Sprintf("decode-step schedule, first %d layers, policy %s", layers, res.DecodePolicy), rows, 64))
}

func parseFramework(name string) (lia.Framework, error) {
	switch strings.ToLower(name) {
	case "lia":
		return lia.LIA, nil
	case "ipex":
		return lia.IPEX, nil
	case "flexgen":
		return lia.FlexGen, nil
	case "powerinfer":
		return lia.PowerInfer, nil
	case "multigpu", "multigpu-tp8", "dgx":
		return lia.MultiGPU, nil
	case "zero", "zero-inference", "deepspeed":
		return lia.ZeROInference, nil
	default:
		return 0, fmt.Errorf("unknown framework %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lia:", err)
	os.Exit(1)
}
