// Command lia-calibrate fits the roofline device model to a user's own
// GEMM microbenchmark measurements, extending the built-in §4 calibration
// to hardware the paper never measured.
//
// Input: CSV lines "M,K,N,TFLOPS" on stdin or from -in, e.g. the output
// of a matmul sweep on your own Xeon or GPU. The fitted ceiling and ramp
// are printed alongside the RMS relative error before and after.
//
//	lia-calibrate -template SPR-AMX < my_xeon_sweep.csv
//	lia-calibrate -template A100 -in measurements.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/perf"
	"github.com/lia-sim/lia/internal/units"
)

// templates names the calibratable device templates.
var templates = map[string]func() perf.Device{
	"SPR-AMX": func() perf.Device { return perf.CPUDevice(hw.SPR, hw.AMX) },
	"SPR-AVX": func() perf.Device { return perf.CPUDevice(hw.SPR, hw.AVX512) },
	"GNR-AMX": func() perf.Device { return perf.CPUDevice(hw.GNR, hw.AMX) },
	"P100":    func() perf.Device { return perf.GPUDevice(hw.P100) },
	"V100":    func() perf.Device { return perf.GPUDevice(hw.V100) },
	"A100":    func() perf.Device { return perf.GPUDevice(hw.A100) },
	"H100":    func() perf.Device { return perf.GPUDevice(hw.H100) },
}

func main() {
	var (
		templateName = flag.String("template", "SPR-AMX", "device template: SPR-AMX, SPR-AVX, GNR-AMX, P100, V100, A100, H100")
		inPath       = flag.String("in", "", "CSV file of M,K,N,TFLOPS rows (default: stdin)")
	)
	flag.Parse()

	mk, ok := templates[*templateName]
	if !ok {
		fatal(fmt.Errorf("unknown template %q", *templateName))
	}
	template := mk()

	var r io.Reader = os.Stdin
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	obs, err := parseObservations(r)
	if err != nil {
		fatal(err)
	}

	before := perf.FitError(template, obs)
	fitted, err := perf.Fit(template, obs)
	if err != nil {
		fatal(err)
	}
	after := perf.FitError(fitted, obs)

	fmt.Printf("template %s: ceiling %v, ramp %.1f rows (RMS rel. error %.1f%%)\n",
		*templateName, template.Ceiling, template.RampRows, 100*before)
	fmt.Printf("fitted       ceiling %v, ramp %.1f rows (RMS rel. error %.1f%%)\n",
		fitted.Ceiling, fitted.RampRows, 100*after)
	fmt.Printf("%d observations; memory system held at %v × %.2f\n",
		len(obs), template.MemBW, template.StreamEff)
}

// parseObservations reads "M,K,N,TFLOPS" lines, ignoring blanks, comments
// (#) and a header row.
func parseObservations(r io.Reader) ([]perf.Observation, error) {
	var obs []perf.Observation
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 4 {
			return nil, fmt.Errorf("line %d: want M,K,N,TFLOPS, got %q", line, text)
		}
		var nums [4]float64
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				if line == 1 && i == 0 {
					nums[0] = -1 // header row; skip below
					break
				}
				return nil, fmt.Errorf("line %d: %v", line, err)
			}
			nums[i] = v
		}
		if nums[0] < 0 {
			continue
		}
		obs = append(obs, perf.Observation{
			M: int(nums[0]), K: int(nums[1]), N: int(nums[2]),
			Rate: units.FLOPSRate(nums[3]) * units.TFLOPS,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return obs, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lia-calibrate:", err)
	os.Exit(1)
}
