// Command lia-policy prints the optimal compute-offloading policy maps
// (Figure 9) for any system/model pairing: one grid per stage over
// (B, L_in), plus the latency of every canonical policy at a chosen
// point.
//
//	lia-policy -system SPR-A100 -model OPT-175B
//	lia-policy -system GNR-H100 -model Llama2-70B -batch 64 -lin 512
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/lia-sim/lia"
	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/report"
)

func main() {
	var (
		systemName = flag.String("system", "SPR-A100", "system name")
		modelName  = flag.String("model", "OPT-175B", "model name")
		batch      = flag.Int("batch", 0, "if >0, also print per-policy latencies at (batch, lin)")
		lin        = flag.Int("lin", 512, "input length for the per-policy breakdown")
	)
	flag.Parse()

	sys, err := lia.SystemByName(*systemName)
	if err != nil {
		fatal(err)
	}
	m, err := lia.ModelByName(*modelName)
	if err != nil {
		fatal(err)
	}
	env := core.NewEnv(sys, m)

	bs := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
	ls := []int{32, 64, 128, 256, 512, 1024, 2048}
	headers := make([]string, len(ls)+1)
	headers[0] = "B \\ L"
	for i, l := range ls {
		headers[i+1] = fmt.Sprint(l)
	}
	for _, stage := range []model.Stage{model.Prefill, model.Decode} {
		t := report.NewTable(fmt.Sprintf("Optimal %v policy, %s on %s (C=full CPU, G=full GPU, P=partial, else vector)", stage, m.Name, sys.Name), headers...)
		for _, b := range bs {
			row := make([]string, len(ls)+1)
			row[0] = fmt.Sprint(b)
			for i, l := range ls {
				p, _ := core.Optimize(env, stage, b, l)
				row[i+1] = label(p)
			}
			t.AddRow(row...)
		}
		fmt.Println(t)
	}

	if *batch > 0 {
		t := report.NewTable(
			fmt.Sprintf("Per-policy single-layer latency at B=%d, L=%d", *batch, *lin),
			"policy", "prefill", "decode")
		for _, p := range []core.Policy{core.FullGPU, core.FullCPU, core.PartialCPU, core.MoEPartial} {
			pre, _ := core.LayerLatency(env, model.Prefill, p, *batch, *lin)
			dec, _ := core.LayerLatency(env, model.Decode, p, *batch, *lin)
			t.AddRow(p.String(), pre.String(), dec.String())
		}
		fmt.Println(t)
	}
}

func label(p core.Policy) string {
	switch p {
	case core.FullCPU:
		return "C"
	case core.FullGPU:
		return "G"
	case core.PartialCPU:
		return "P"
	default:
		return p.String()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lia-policy:", err)
	os.Exit(1)
}
