// Command lia-serve simulates a serving deployment: Poisson arrivals
// drawn from the Azure-style trace distributions (§7), a batcher with a
// size cap and waiting window, and the chosen framework as the backend.
// It reports per-request latency percentiles and sustained throughput.
//
//	lia-serve -system SPR-A100 -model OPT-30B -rate 2 -requests 64 -max-batch 16
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/lia-sim/lia"
	"github.com/lia-sim/lia/internal/engine"
	"github.com/lia-sim/lia/internal/serve"
	"github.com/lia-sim/lia/internal/trace"
	"github.com/lia-sim/lia/internal/units"
)

func main() {
	var (
		systemName = flag.String("system", "SPR-A100", "system name")
		modelName  = flag.String("model", "OPT-30B", "model name")
		fwName     = flag.String("framework", "LIA", "backend framework")
		kind       = flag.String("trace", "code", "trace family: code (Lout≈32) or conversation (Lout≈256)")
		rate       = flag.Float64("rate", 1, "arrival rate, requests/second")
		n          = flag.Int("requests", 64, "number of requests to simulate")
		maxBatch   = flag.Int("max-batch", 16, "batch former size cap")
		maxWait    = flag.Float64("max-wait", 5, "batching window, seconds")
		seed       = flag.Int64("seed", 1, "random seed")
		continuous = flag.Bool("continuous", false, "iteration-level (continuous) batching instead of static batches")
		kvBudgetGB = flag.Float64("kv-budget-gb", 0, "paged KV-cache pool size in GB (continuous only; 0 = unconstrained)")
	)
	flag.Parse()

	sys, err := lia.SystemByName(*systemName)
	if err != nil {
		fatal(err)
	}
	m, err := lia.ModelByName(*modelName)
	if err != nil {
		fatal(err)
	}
	fw := engine.LIA
	switch strings.ToLower(*fwName) {
	case "lia":
	case "ipex":
		fw = engine.IPEX
	case "flexgen":
		fw = engine.FlexGen
	default:
		fatal(fmt.Errorf("unknown framework %q", *fwName))
	}
	family := trace.Code
	if strings.HasPrefix(strings.ToLower(*kind), "conv") {
		family = trace.Conversation
	}

	gen, err := trace.NewGenerator(family, 32, m.MaxSeqLen-family.MeanOutput(), *seed)
	if err != nil {
		fatal(err)
	}
	reqs, err := serve.PoissonArrivals(gen, *n, *rate, *seed+1)
	if err != nil {
		fatal(err)
	}
	cfg := serve.Config{
		System:             sys,
		Model:              m,
		Framework:          fw,
		MaxBatch:           *maxBatch,
		MaxWait:            units.Seconds(*maxWait),
		AssumeHostCapacity: true,
		KVBudget:           units.Bytes(*kvBudgetGB) * units.GB,
	}
	simulate := serve.Simulate
	mode := "static batching"
	if *continuous {
		simulate = serve.SimulateContinuous
		mode = "continuous batching"
	}
	metrics, err := simulate(cfg, reqs)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%s serving %s on %s — %d requests at %.2f req/s (%s trace, %s)\n",
		fw, m.Name, sys.Name, *n, *rate, family, mode)
	fmt.Printf("  completed   : %d in %v (%d batches, mean size %.1f)\n",
		metrics.Completed, metrics.Makespan, metrics.Batches, metrics.MeanBatchSize)
	fmt.Printf("  throughput  : %.1f tokens/s\n", metrics.Throughput)
	fmt.Printf("  latency     : mean %v, p50 %v, p95 %v, p99 %v\n",
		metrics.Mean, metrics.P50, metrics.P95, metrics.P99)
	fmt.Printf("  queueing    : mean %v\n", metrics.MeanQueueing)
	if metrics.Preemptions > 0 {
		fmt.Printf("  preemptions : %d (KV pool pressure)\n", metrics.Preemptions)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lia-serve:", err)
	os.Exit(1)
}
