// Command lia-serve runs the serving layer in two modes.
//
// Simulator (default): Poisson arrivals drawn from the Azure-style trace
// distributions (§7), a batcher with a size cap and waiting window, and
// the chosen framework as the analytic backend. Reports per-request
// latency percentiles and sustained throughput.
//
//	lia-serve -system SPR-A100 -model OPT-30B -rate 2 -requests 64 -max-batch 16
//
// Live (-live): a real HTTP gateway over the functional inference engine
// — the same iteration-level continuous-batching policy the simulator
// runs, driving llm.Executor under concurrent traffic with bounded-queue
// load shedding, per-request deadlines, and Prometheus metrics:
//
//	lia-serve -live -addr :8080 -live-model tiny -max-batch 8
//	curl -s localhost:8080/v1/generate -d '{"prompt":[5,17,42],"max_new_tokens":8}'
//
// Live bench (-live-bench): drives the in-process gateway with
// concurrent closed-loop clients for a fixed window and prints sustained
// req/s plus exact client-side TTFT percentiles as JSON (the
// BENCH_gateway.json baseline).
//
// The live modes optionally host the engine's weights and KV cache in
// the tiered-memory runtime (-offload ddr or -offload cxl): tokens stay
// bit-identical, admission derives its KV budget from the KV tier, and
// /metrics gains the lia_offload_* counters. Offload bench
// (-offload-bench) compares resident against DDR-streamed and
// CXL-streamed hosting on the tiny model and prints the virtual-clock
// decode latencies as JSON (the BENCH_offload.json baseline).
//
// -prefix-cache turns on cross-request KV reuse in the live modes: a
// radix tree over the paged KV pool serves shared prompt prefixes from
// cache, prefill skips the cached tokens, and /metrics gains the
// lia_prefix_* counters. Prefix bench (-prefix-bench) replays a skewed
// hot-prefix trace with the cache off and on, checks the token streams
// stay bit-identical, and prints TTFT percentiles plus the analytic
// concurrency win as JSON (the BENCH_prefix.json baseline).
//
// The latency ladder rides on the live modes: -spec γ enables greedy
// speculative decoding against a truncated self-draft
// (-spec-draft-layers deep), -prefill-chunk bounds how many prompt
// tokens one scheduling round prefills so decodes interleave with long
// arrivals. Both keep tokens bit-identical. Chunked bench
// (-chunked-bench) serves the same short/long-prompt mix monolithic and
// chunked and prints short-request TTFT percentiles as JSON.
//
// -quant selects a compressed weight tier for the live modes: "sparse"
// prunes to block-sparsity -quant-sparsity and skips zero tile blocks
// (tokens bit-identical to dense compute over the pruned weights),
// "int4lut" serves 4-bit group-quantized weights through the LUT-GEMV
// kernel (documented tolerance vs the dequantized reference), "int8"
// the existing AMX INT8 path. /metrics gains the lia_quant_* gauges.
// Quant bench (-quant-bench) decodes the same stream under dense,
// sparse, and int4lut and prints per-tier decode speed, footprint, and
// accuracy as JSON (the BENCH_quant.json baseline).
//
// Scenario lab (-scenario) runs the statistical experiment harness: the
// standing matrix of workload scenarios × chaos fault plans
// (internal/scenario), N seeded trials per cell, each trial a
// deterministic virtual-clock replay plus a live chaos leg over the
// real gateway asserting the standing invariants. Prints the
// byte-reproducible JSON artifact on stdout (the BENCH_scenario.json
// baseline) and the SLO verdict table on stderr; -scenario-trials and
// -scenario-live rescale the matrix.
//
// Fleet bench (-fleet-bench) replays one saturating code/chat blend
// burst through virtual multi-replica fleets (internal/router) across
// the scale-study matrix — placement policy (p2c vs round-robin) ×
// replica count (1/2/4/8) × fleet mix (homogeneous A100 vs a
// heterogeneous A100/H100/CPU-only-AMX/DGX-TP4 rotation) — and prints
// per-cell throughput plus TTFT percentiles as JSON (the
// BENCH_fleet.json baseline).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/lia-sim/lia"
	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/cxl"
	"github.com/lia-sim/lia/internal/engine"
	"github.com/lia-sim/lia/internal/gateway"
	"github.com/lia-sim/lia/internal/kvpage"
	"github.com/lia-sim/lia/internal/llm"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/offload"
	"github.com/lia-sim/lia/internal/quant"
	"github.com/lia-sim/lia/internal/serve"
	"github.com/lia-sim/lia/internal/tensor"
	"github.com/lia-sim/lia/internal/trace"
	"github.com/lia-sim/lia/internal/units"
)

func main() {
	var (
		// Simulator flags.
		systemName = flag.String("system", "SPR-A100", "system name (simulator)")
		modelName  = flag.String("model", "OPT-30B", "model name (simulator)")
		fwName     = flag.String("framework", "LIA", "backend framework (simulator)")
		kind       = flag.String("trace", "code", "trace family: code (Lout≈32) or conversation (Lout≈256)")
		rate       = flag.Float64("rate", 1, "arrival rate, requests/second (simulator)")
		n          = flag.Int("requests", 64, "number of requests to simulate")
		maxWait    = flag.Float64("max-wait", 5, "batching window, seconds (static simulator)")
		continuous = flag.Bool("continuous", false, "iteration-level (continuous) batching instead of static batches")
		kvBudgetGB = flag.Float64("kv-budget-gb", 0, "paged KV-cache pool size in GB (continuous only; 0 = unconstrained)")

		// Shared.
		maxBatch = flag.Int("max-batch", 16, "batch size cap")
		seed     = flag.Int64("seed", 1, "random seed")

		// Live gateway flags.
		live       = flag.Bool("live", false, "serve real inference over HTTP instead of simulating")
		liveBench  = flag.Bool("live-bench", false, "benchmark the in-process live gateway and print JSON")
		addr       = flag.String("addr", ":8080", "listen address (live)")
		liveModel  = flag.String("live-model", "tiny", "functional model: tiny or tiny-llama (live)")
		livePolicy = flag.String("live-policy", "partial", "offloading policy: gpu, cpu, or partial (live)")
		queueDepth = flag.Int("queue-depth", 64, "admission queue bound; excess sheds with 429 (live)")
		kvTokens   = flag.Int("live-kv-tokens", 0, "paged KV pool capacity in tokens (live; 0 = unconstrained)")
		drainSecs  = flag.Float64("drain-timeout", 30, "graceful shutdown drain budget, seconds (live)")
		offloadTo  = flag.String("offload", "none", "tiered-memory hosting of weights and KV: none, ddr, or cxl (live)")
		prefixOn   = flag.Bool("prefix-cache", false, "cross-request KV prefix reuse over the paged pool (live)")

		// Latency-ladder flags (live modes).
		specGamma    = flag.Int("spec", 0, "speculative decoding draft depth γ; 0 disables (live)")
		specDraft    = flag.Int("spec-draft-layers", 1, "decoder layers in the truncated self-draft model (live, with -spec)")
		prefillChunk = flag.Int("prefill-chunk", 0, "prompt tokens prefilled per scheduling round; 0 = whole prompt at admission (live)")

		// Offload bench flag (uses -live-model, -bench-tokens, -seed).
		offloadBench = flag.Bool("offload-bench", false, "compare resident vs ddr vs cxl tiered hosting and print JSON")

		// Prefix bench flag (uses -live-model, -seed).
		prefixBench = flag.Bool("prefix-bench", false, "replay a hot-prefix trace with the prefix cache off and on and print JSON")

		// Chunked-prefill bench flag (uses -live-model, -prefill-chunk, -seed).
		chunkedBench = flag.Bool("chunked-bench", false, "serve a mixed short/long-prompt workload with chunked prefill off and on and print JSON")

		// Compressed-weight tier flags (live modes).
		quantTier     = flag.String("quant", "", "compressed weight tier: dense, sparse, int4lut, or int8 (live)")
		quantSparsity = flag.Float64("quant-sparsity", 0, "target zero tile-block fraction for -quant sparse; 0 = default 0.5")
		quantGroup    = flag.Int("quant-group", 0, "INT4 group length for -quant int4lut; 0 = default")

		// Quant bench flag (uses -live-model, -live-policy, -bench-tokens, -seed).
		quantBench = flag.Bool("quant-bench", false, "decode the same stream under dense, sparse, and int4lut tiers and print JSON")

		// Scenario lab flags (uses -seed; artifact JSON on stdout, verdict
		// table on stderr).
		scenarioLab    = flag.Bool("scenario", false, "run the scenario-lab experiment matrix and print the deterministic JSON artifact")
		scenarioTrials = flag.Int("scenario-trials", 0, "trials per matrix cell; 0 = experiment default (scenario)")
		scenarioLive   = flag.Int("scenario-live", -1, "live chaos legs per cell; -1 = experiment default, 0 = all trials (scenario)")

		// Fleet bench flag (uses -live-model, -seed).
		fleetBench = flag.Bool("fleet-bench", false, "replay a saturating blend burst across the fleet matrix (policy x replicas x mix) and print JSON")

		// Live bench flags.
		benchClients = flag.Int("bench-clients", 8, "concurrent closed-loop clients (live-bench)")
		benchSecs    = flag.Float64("bench-seconds", 3, "measurement window, seconds (live-bench)")
		benchTokens  = flag.Int("bench-tokens", 16, "tokens generated per request (live-bench)")
	)
	flag.Parse()

	if *scenarioLab {
		if err := runScenarioLab(*scenarioTrials, *scenarioLive, *seed); err != nil {
			fatal(err)
		}
		return
	}

	if *fleetBench {
		if err := runFleetBench(*liveModel, *seed); err != nil {
			fatal(err)
		}
		return
	}

	if *offloadBench {
		if err := runOffloadBench(*liveModel, *benchTokens, *seed); err != nil {
			fatal(err)
		}
		return
	}

	if *prefixBench {
		if err := runPrefixBench(*liveModel, *seed); err != nil {
			fatal(err)
		}
		return
	}

	if *chunkedBench {
		chunk := *prefillChunk
		if chunk <= 0 {
			chunk = 4
		}
		if err := runChunkedBench(*liveModel, chunk, *seed); err != nil {
			fatal(err)
		}
		return
	}

	if *quantBench {
		if err := runQuantBench(*liveModel, *livePolicy, *benchTokens, *quantSparsity, *quantGroup, *seed); err != nil {
			fatal(err)
		}
		return
	}

	if *live || *liveBench {
		g, host, desc, err := buildGateway(*liveModel, *livePolicy, *offloadTo, *maxBatch, *queueDepth, *kvTokens, *prefixOn, *prefillChunk, *specGamma, *specDraft, *quantTier, *quantSparsity, *quantGroup, *seed)
		if err != nil {
			fatal(err)
		}
		if host != nil {
			defer host.Close()
		}
		if *liveBench {
			err = runBench(g, desc, *benchClients, *benchSecs, *benchTokens, *seed)
		} else {
			err = runLive(g, desc, *addr, *drainSecs)
		}
		if err != nil {
			fatal(err)
		}
		return
	}

	runSimulator(*systemName, *modelName, *fwName, *kind, *rate, *n, *maxBatch, *maxWait, *seed, *continuous, *kvBudgetGB)
}

// liveModelConfig resolves the functional-model flag.
func liveModelConfig(modelName string) (model.Config, error) {
	switch strings.ToLower(modelName) {
	case "tiny":
		return llm.TinyConfig(), nil
	case "tiny-llama", "tinyllama":
		return llm.TinyLlamaConfig(), nil
	default:
		return model.Config{}, fmt.Errorf("unknown live model %q (want tiny or tiny-llama)", modelName)
	}
}

// parsePolicy resolves the offloading-policy flag.
func parsePolicy(policyName string) (core.Policy, error) {
	switch strings.ToLower(policyName) {
	case "gpu":
		return core.Policy{}, nil // zero value: everything on GPU
	case "cpu":
		return core.FullCPU, nil
	case "partial":
		return core.PartialCPU, nil
	default:
		return core.Policy{}, fmt.Errorf("unknown policy %q (want gpu, cpu, or partial)", policyName)
	}
}

// buildOffloadHost assembles the tiered-memory runtime over a
// laptop-scale system that pins one decoder layer: "ddr" streams the
// rest from host DRAM, "cxl" attaches an expander and places parameters
// there under the §6 policy. Mode "none" returns nil.
func buildOffloadHost(cfg model.Config, mode string, pol core.Policy) (*offload.Host, error) {
	nCXL, placement := 0, cxl.DDROnlyPlacement()
	switch strings.ToLower(mode) {
	case "none", "":
		return nil, nil
	case "ddr":
	case "cxl":
		nCXL, placement = 1, cxl.PolicyPlacement()
	default:
		return nil, fmt.Errorf("unknown offload mode %q (want none, ddr, or cxl)", mode)
	}
	// ctx 256 keeps the KV cache heavier than one layer, so the planner
	// pins a layer yet leaves KV host-side (the streaming regime).
	const pinned, ctx = 1, 256
	plan, err := offload.NewPlan(offload.Config{
		System:    offload.TinySystem(cfg, 1, ctx, pinned, nCXL),
		Model:     cfg,
		Batch:     1,
		Context:   ctx,
		Placement: placement,
	})
	if err != nil {
		return nil, err
	}
	return offload.NewHost(plan, pol)
}

// buildGateway assembles the live serving stack: a random-weight
// functional model, an executor with the chosen offloading policy
// (optionally hosted by the tiered-memory runtime), and the gateway in
// front of them.
func buildGateway(modelName, policyName, offloadMode string, maxBatch, queueDepth, kvTokens int, prefixCache bool, prefillChunk, specGamma, specDraftLayers int, quantTier string, quantSparsity float64, quantGroup int, seed int64) (*gateway.Gateway, *offload.Host, string, error) {
	cfg, err := liveModelConfig(modelName)
	if err != nil {
		return nil, nil, "", err
	}
	pol, err := parsePolicy(policyName)
	if err != nil {
		return nil, nil, "", err
	}
	m, err := llm.NewRandom(cfg, seed)
	if err != nil {
		return nil, nil, "", err
	}
	host, err := buildOffloadHost(cfg, offloadMode, pol)
	if err != nil {
		return nil, nil, "", err
	}
	var budget units.Bytes
	if kvTokens > 0 {
		budget = cfg.KVBytes(1, kvTokens)
	}
	exec := llm.NewExecutor(m, pol)
	if host != nil { // interface-typed field: a nil *Host is not a nil MemHost
		exec.Mem = host
	}
	g, err := gateway.New(exec, gateway.Config{
		MaxBatch:        maxBatch,
		QueueDepth:      queueDepth,
		KVBudget:        budget,
		KVBlockTokens:   4,
		Offload:         host,
		PrefixCache:     prefixCache,
		PrefillChunk:    prefillChunk,
		SpecGamma:       specGamma,
		SpecDraftLayers: specDraftLayers,
		Quant:           quantTier,
		QuantSparsity:   quantSparsity,
		QuantGroup:      quantGroup,
	})
	if err != nil {
		if host != nil {
			host.Close()
		}
		return nil, nil, "", err
	}
	desc := fmt.Sprintf("%s model, %s policy, max batch %d, queue %d", modelName, policyName, maxBatch, queueDepth)
	if kvTokens > 0 {
		desc += fmt.Sprintf(", KV pool %d tokens", kvTokens)
	}
	if prefixCache {
		desc += ", prefix cache"
	}
	if prefillChunk > 0 {
		desc += fmt.Sprintf(", prefill chunk %d", prefillChunk)
	}
	if specGamma > 0 {
		desc += fmt.Sprintf(", spec γ=%d (%d-layer draft)", specGamma, specDraftLayers)
	}
	if tier := g.Snapshot().QuantTier; tier != "dense" {
		desc += fmt.Sprintf(", quant %s", tier)
	}
	if host != nil {
		desc += fmt.Sprintf(", offload %s (%s)", strings.ToLower(offloadMode), host.Plan())
	}
	return g, host, desc, nil
}

// runLive serves the gateway over HTTP until SIGINT/SIGTERM, then drains
// within the budget and dumps final stats.
func runLive(g *gateway.Gateway, desc, addr string, drainSecs float64) error {
	srv := &http.Server{Addr: addr, Handler: g.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("lia-serve: live gateway on %s (%s)\n", addr, desc)
	fmt.Printf("  try: curl -s localhost%s/v1/generate -d '{\"prompt\":[5,17,42],\"max_new_tokens\":8}'\n", portOf(addr))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	fmt.Println("lia-serve: draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), time.Duration(drainSecs*float64(time.Second)))
	defer cancel()
	gwErr := g.Shutdown(drainCtx)
	_ = srv.Shutdown(drainCtx)
	dumpStats(g.Snapshot())
	if gwErr != nil {
		return fmt.Errorf("drain aborted: %w", gwErr)
	}
	return nil
}

func dumpStats(s gateway.Snapshot) {
	fmt.Printf("  served      : %d requests, %d tokens (%d preemptions)\n", s.Completed, s.Tokens, s.Preempted)
	fmt.Printf("  refused     : %d shed, %d rejected, %d canceled\n", s.Shed, s.Rejected, s.Canceled)
	fmt.Printf("  queue wait  : mean %v, p99 ≤%v\n", s.QueueWaitMean, s.QueueWaitP99)
	fmt.Printf("  ttft        : mean %v, p50 ≤%v, p99 ≤%v\n", s.TTFTMean, s.TTFTP50, s.TTFTP99)
	fmt.Printf("  decode step : mean %v\n", s.PerTokenMean)
}

func portOf(addr string) string {
	if i := strings.LastIndex(addr, ":"); i >= 0 {
		return addr[i:]
	}
	return ":" + addr
}

// benchReport is the BENCH_gateway.json measurement payload. Percentiles
// are exact (sorted client-side samples), not histogram bucket bounds.
type benchReport struct {
	Config struct {
		Description string  `json:"description"`
		Clients     int     `json:"clients"`
		Seconds     float64 `json:"seconds"`
		TokensPerOp int     `json:"tokens_per_request"`
	} `json:"config"`
	Completed        int     `json:"completed"`
	Shed             uint64  `json:"shed"`
	Preempted        uint64  `json:"preempted"`
	SustainedReqS    float64 `json:"sustained_req_per_s"`
	TokensPerS       float64 `json:"tokens_per_s"`
	TTFTP50Ms        float64 `json:"ttft_p50_ms"`
	TTFTP99Ms        float64 `json:"ttft_p99_ms"`
	TotalP50Ms       float64 `json:"total_p50_ms"`
	TotalP99Ms       float64 `json:"total_p99_ms"`
	QueueMeanMs      float64 `json:"queue_wait_mean_ms"`
	DecodeStepMeanMs float64 `json:"decode_step_mean_ms"`
}

// runBench drives the in-process gateway with closed-loop clients for a
// fixed window and prints exact client-side percentiles as JSON.
func runBench(g *gateway.Gateway, desc string, clients int, seconds float64, tokens int, seed int64) error {
	type sample struct{ ttft, total time.Duration }
	var (
		mu      sync.Mutex
		samples []sample
	)
	deadline := time.Now().Add(time.Duration(seconds * float64(time.Second)))
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(c)))
			for time.Now().Before(deadline) {
				prompt := make([]int, 4+rng.Intn(8))
				for i := range prompt {
					prompt[i] = rng.Intn(64)
				}
				res, err := g.Submit(context.Background(), prompt, tokens)
				if err != nil {
					if errors.Is(err, gateway.ErrOverloaded) {
						time.Sleep(time.Millisecond) // closed loop backs off on shed
						continue
					}
					return
				}
				mu.Lock()
				samples = append(samples, sample{ttft: res.TTFT, total: res.Total})
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := g.Shutdown(ctx); err != nil {
		return err
	}
	if len(samples) == 0 {
		return fmt.Errorf("bench served no requests")
	}

	// Exact nearest-rank percentile over the raw samples.
	pct := func(d []time.Duration, p float64) time.Duration {
		idx := int(p*float64(len(d))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(d) {
			idx = len(d) - 1
		}
		return d[idx]
	}
	ttfts := make([]time.Duration, len(samples))
	totals := make([]time.Duration, len(samples))
	for i, s := range samples {
		ttfts[i], totals[i] = s.ttft, s.total
	}
	sort.Slice(ttfts, func(i, j int) bool { return ttfts[i] < ttfts[j] })
	sort.Slice(totals, func(i, j int) bool { return totals[i] < totals[j] })

	snap := g.Snapshot()
	var rep benchReport
	rep.Config.Description = desc
	rep.Config.Clients = clients
	rep.Config.Seconds = seconds
	rep.Config.TokensPerOp = tokens
	rep.Completed = len(samples)
	rep.Shed = snap.Shed
	rep.Preempted = snap.Preempted
	rep.SustainedReqS = float64(len(samples)) / elapsed.Seconds()
	rep.TokensPerS = float64(len(samples)*tokens) / elapsed.Seconds()
	rep.TTFTP50Ms = ms(pct(ttfts, 0.50))
	rep.TTFTP99Ms = ms(pct(ttfts, 0.99))
	rep.TotalP50Ms = ms(pct(totals, 0.50))
	rep.TotalP99Ms = ms(pct(totals, 0.99))
	rep.QueueMeanMs = ms(snap.QueueWaitMean)
	rep.DecodeStepMeanMs = ms(snap.PerTokenMean)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// offloadBenchRow is one tier configuration's measurement in
// BENCH_offload.json. Virtual times come from the host's transfer/compute
// clock (the analytic link semantics); the resident baseline has none.
type offloadBenchRow struct {
	Name         string `json:"name"`
	PinnedLayers int    `json:"pinned_layers,omitempty"`
	// VirtualDecodeMs is the last decode pass's virtual makespan; the
	// stream and compute columns show how much of it each side occupies
	// (they overlap under double buffering).
	VirtualDecodeMs  float64 `json:"virtual_decode_ms,omitempty"`
	VirtualStreamMs  float64 `json:"virtual_stream_ms,omitempty"`
	VirtualComputeMs float64 `json:"virtual_compute_ms,omitempty"`
	LinkTransfers    uint64  `json:"link_transfers,omitempty"`
	KVSpills         uint64  `json:"kv_spills,omitempty"`
	KVEvictions      uint64  `json:"kv_evictions,omitempty"`
	WallDecodeUs     float64 `json:"wall_decode_us_per_token"`
}

// offloadBenchReport is the BENCH_offload.json payload: the same
// generation on the same weights, resident versus tier-hosted.
type offloadBenchReport struct {
	Model        string            `json:"model"`
	Tokens       int               `json:"tokens"`
	BitIdentical bool              `json:"bit_identical"`
	Configs      []offloadBenchRow `json:"configs"`
}

// runOffloadBench generates the same stream under three hosting
// configurations — resident, DDR-streamed, CXL-streamed — and prints the
// wall-clock and virtual-clock decode latencies as JSON. The token
// streams must agree bit-for-bit; the report records that they did.
func runOffloadBench(modelName string, tokens int, seed int64) error {
	cfg, err := liveModelConfig(modelName)
	if err != nil {
		return err
	}
	if tokens < 2 {
		return fmt.Errorf("offload bench needs at least 2 tokens, got %d", tokens)
	}
	prompt := []int{5, 17, 42, 9, 63}
	rep := offloadBenchReport{Model: cfg.Name, Tokens: tokens, BitIdentical: true}
	var first []int
	for _, mode := range []string{"none", "ddr", "cxl"} {
		m, err := llm.NewRandom(cfg, seed)
		if err != nil {
			return err
		}
		e := llm.NewExecutor(m, core.FullGPU)
		host, err := buildOffloadHost(cfg, mode, core.FullGPU)
		if err != nil {
			return err
		}
		if host != nil {
			e.Mem = host
		}
		start := time.Now()
		out, err := e.Generate(prompt, tokens)
		wall := time.Since(start)
		if err != nil {
			return err
		}
		if first == nil {
			first = out
		} else if !equalTokens(first, out) {
			rep.BitIdentical = false
		}
		row := offloadBenchRow{
			Name:         "resident",
			WallDecodeUs: float64(wall.Microseconds()) / float64(tokens),
		}
		if host != nil {
			snap := host.Snapshot()
			row.Name = mode + "-streamed"
			row.PinnedLayers = host.Plan().GPU.PinnedLayers
			row.VirtualDecodeMs = secMs(snap.LastPass.Makespan)
			row.VirtualStreamMs = secMs(snap.LastPass.Stream)
			row.VirtualComputeMs = secMs(snap.LastPass.Compute)
			row.LinkTransfers = snap.Xfer.Transfers
			row.KVSpills = snap.KVSpills
			row.KVEvictions = snap.KVEvictions
			host.Close()
		}
		rep.Configs = append(rep.Configs, row)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func secMs(s units.Seconds) float64 { return float64(s) * 1e3 }

// quantBenchRow is one weight tier's measurement in BENCH_quant.json.
// Accuracy is reported against the dense tier on the same random
// weights: prefill-logit max-abs error plus the fraction of greedy
// tokens that agree with the dense stream. Sparse serves pruned weights
// (a different model by construction) and int4lut a quantized one, so
// neither is expected to agree perfectly — the rows quantify the
// accuracy-vs-footprint-vs-speed trade the tier buys.
type quantBenchRow struct {
	Tier             string  `json:"tier"`
	WeightBytes      int64   `json:"weight_bytes"`
	WallDecodeUs     float64 `json:"wall_us_per_token"`
	TokensPerSec     float64 `json:"tokens_per_sec"`
	AMXCycles        uint64  `json:"amx_cycles"`
	PrefillMaxAbsErr float64 `json:"prefill_max_abs_err"`
	TokenAgreement   float64 `json:"token_agreement"`
	BlockSparsity    float64 `json:"block_sparsity,omitempty"`
}

// quantBenchReport is the BENCH_quant.json payload: the same prompt
// decoded greedily under the dense, sparse, and int4lut weight tiers.
type quantBenchReport struct {
	Model    string          `json:"model"`
	Policy   string          `json:"policy"`
	Tokens   int             `json:"tokens"`
	Sparsity float64         `json:"sparsity"`
	Group    int             `json:"group"`
	Tiers    []quantBenchRow `json:"tiers"`
}

// runQuantBench decodes the same stream under the three weight tiers
// and prints per-tier decode speed, serving footprint, and accuracy
// against the dense baseline as JSON.
func runQuantBench(modelName, policyName string, tokens int, sparsity float64, group int, seed int64) error {
	cfg, err := liveModelConfig(modelName)
	if err != nil {
		return err
	}
	pol, err := parsePolicy(policyName)
	if err != nil {
		return err
	}
	if tokens < 2 {
		return fmt.Errorf("quant bench needs at least 2 tokens, got %d", tokens)
	}
	if sparsity <= 0 {
		sparsity = 0.5
	}
	if group <= 0 {
		group = quant.DefaultGroupINT4
	}
	prompt := []int{5, 17, 42, 9, 63}
	rep := quantBenchReport{Model: cfg.Name, Policy: strings.ToLower(policyName), Tokens: tokens, Sparsity: sparsity, Group: group}

	var denseLogits tensor.Matrix
	var denseTokens []int
	for _, tier := range []string{"dense", "sparse", "int4lut"} {
		m, err := llm.NewRandom(cfg, seed)
		if err != nil {
			return err
		}
		e := llm.NewExecutor(m, pol)
		switch tier {
		case "sparse":
			e.EnableSparse(sparsity)
		case "int4lut":
			e.EnableINT4LUT(group)
		}
		logits, cache, err := e.Prefill(prompt)
		if err != nil {
			return err
		}
		e.RetireCache(cache)
		e.Stats = llm.Stats{}
		start := time.Now()
		out, err := e.Generate(prompt, tokens)
		wall := time.Since(start)
		if err != nil {
			return err
		}
		if tier == "dense" {
			denseLogits, denseTokens = logits, out
		}
		agree := 0
		for i := range out {
			if out[i] == denseTokens[i] {
				agree++
			}
		}
		rep.Tiers = append(rep.Tiers, quantBenchRow{
			Tier:             e.QuantTier(),
			WeightBytes:      e.WeightFootprint(),
			WallDecodeUs:     float64(wall.Microseconds()) / float64(tokens),
			TokensPerSec:     float64(tokens) / wall.Seconds(),
			AMXCycles:        e.Stats.AMXCycles,
			PrefillMaxAbsErr: quant.MaxAbsError(logits, denseLogits),
			TokenAgreement:   float64(agree) / float64(tokens),
			BlockSparsity:    e.SparseSkipFraction(),
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// prefixBenchMode is one cache configuration's measurement in
// BENCH_prefix.json. Cold is the first replay of the trace (nothing
// cached yet), warm the second replay of the same requests; with the
// cache on the hit/miss split classifies individual requests by whether
// their prefill actually reused cached blocks.
type prefixBenchMode struct {
	Name          string  `json:"name"`
	ColdTTFTP50Ms float64 `json:"cold_ttft_p50_ms"`
	WarmTTFTP50Ms float64 `json:"warm_ttft_p50_ms"`
	HitTTFTP50Ms  float64 `json:"hit_ttft_p50_ms,omitempty"`
	MissTTFTP50Ms float64 `json:"miss_ttft_p50_ms,omitempty"`
	WallMs        float64 `json:"wall_ms"`
}

// prefixBenchReport is the BENCH_prefix.json payload: the same skewed
// hot-prefix trace served with the prefix cache off and on. The token
// streams must agree bit-for-bit; the report records that they did. The
// concurrency block is the analytic capacity question: how many mean
// sequences the same pool admits with isolated KV versus a shared
// cached prefix.
type prefixBenchReport struct {
	Config struct {
		Model           string  `json:"model"`
		RequestsPerWave int     `json:"requests_per_wave"`
		Waves           int     `json:"waves"`
		Prefixes        int     `json:"prefixes"`
		PrefixTokens    int     `json:"prefix_tokens"`
		Skew            float64 `json:"skew"`
		OutputTokens    int     `json:"output_tokens"`
		KVPoolTokens    int     `json:"kv_pool_tokens"`
	} `json:"config"`
	BitIdentical bool              `json:"bit_identical"`
	Modes        []prefixBenchMode `json:"modes"`
	PrefixStats  struct {
		Hits      uint64 `json:"hits"`
		Misses    uint64 `json:"misses"`
		HitTokens uint64 `json:"hit_tokens"`
		Inserts   uint64 `json:"inserts"`
		Evictions uint64 `json:"evictions"`
		Spills    uint64 `json:"spills"`
		Refetches uint64 `json:"refetches"`
	} `json:"prefix_stats"`
	Concurrency struct {
		MeanSeqTokens      int `json:"mean_seq_tokens"`
		SharedPrefixTokens int `json:"shared_prefix_tokens"`
		Isolated           int `json:"max_concurrent_sequences"`
		Shared             int `json:"max_concurrent_sequences_shared"`
	} `json:"concurrency"`
}

// p50 returns the exact nearest-rank median of the samples.
func p50(d []time.Duration) time.Duration {
	if len(d) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), d...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(0.5*float64(len(s))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	return s[idx]
}

// runPrefixBench replays the same hot-prefix trace twice (a cold wave
// and a warm wave) through two gateways — prefix cache off and on —
// checks both serve bit-identical token streams, and prints TTFT
// medians, prefix-cache counters, and the analytic concurrency gain as
// JSON. Requests go one at a time so TTFT is pure prefill cost, not
// queueing noise.
func runPrefixBench(modelName string, seed int64) error {
	cfg, err := liveModelConfig(modelName)
	if err != nil {
		return err
	}
	const (
		nRequests = 40
		waves     = 2
		kvTokens  = 512
		maxBatch  = 4
	)
	spec := trace.PrefixSpec{
		Prefixes:     4,
		PrefixTokens: 48,
		Skew:         1.2,
		Vocab:        cfg.VocabSize,
		MinSuffix:    4,
		MaxSuffix:    12,
		OutputTokens: 8,
	}
	if spec.PrefixTokens+spec.MaxSuffix+spec.OutputTokens > cfg.MaxSeqLen {
		return fmt.Errorf("prefix bench workload exceeds %s's %d-token context", cfg.Name, cfg.MaxSeqLen)
	}

	var rep prefixBenchReport
	rep.Config.Model = cfg.Name
	rep.Config.RequestsPerWave = nRequests
	rep.Config.Waves = waves
	rep.Config.Prefixes = spec.Prefixes
	rep.Config.PrefixTokens = spec.PrefixTokens
	rep.Config.Skew = spec.Skew
	rep.Config.OutputTokens = spec.OutputTokens
	rep.Config.KVPoolTokens = kvTokens
	rep.BitIdentical = true

	var first [][]int
	for _, cacheOn := range []bool{false, true} {
		// Same seed both runs: identical weights, identical requests.
		gen, err := trace.NewPrefixGenerator(spec, seed)
		if err != nil {
			return err
		}
		reqs := gen.Batch(nRequests)
		g, _, _, err := buildGateway(modelName, "partial", "none", maxBatch, 64, kvTokens, cacheOn, 0, 0, 0, "", 0, 0, seed)
		if err != nil {
			return err
		}
		row := prefixBenchMode{Name: "prefix-off"}
		if cacheOn {
			row.Name = "prefix-on"
		}
		var (
			outs      [][]int
			waveTTFT  [waves][]time.Duration
			hit, miss []time.Duration
		)
		start := time.Now()
		for w := 0; w < waves; w++ {
			for _, r := range reqs {
				var hitTokensBefore uint64
				if cacheOn {
					st, _ := g.PrefixStats()
					hitTokensBefore = st.HitTokens
				}
				res, err := g.Submit(context.Background(), r.Prompt, r.OutputLen)
				if err != nil {
					return fmt.Errorf("%s request %d: %w", row.Name, r.ID, err)
				}
				outs = append(outs, res.Tokens)
				waveTTFT[w] = append(waveTTFT[w], res.TTFT)
				if cacheOn {
					st, _ := g.PrefixStats()
					if st.HitTokens > hitTokensBefore {
						hit = append(hit, res.TTFT)
					} else {
						miss = append(miss, res.TTFT)
					}
				}
			}
		}
		row.WallMs = ms(time.Since(start))
		if cacheOn {
			st, _ := g.PrefixStats()
			rep.PrefixStats.Hits = st.Hits
			rep.PrefixStats.Misses = st.Misses
			rep.PrefixStats.HitTokens = st.HitTokens
			rep.PrefixStats.Inserts = st.Inserts
			rep.PrefixStats.Evictions = st.Evictions
			rep.PrefixStats.Spills = st.Spills
			rep.PrefixStats.Refetches = st.Refetches
			row.HitTTFTP50Ms = ms(p50(hit))
			row.MissTTFTP50Ms = ms(p50(miss))
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		err = g.Shutdown(ctx)
		cancel()
		if err != nil {
			return err
		}
		if first == nil {
			first = outs
		} else {
			for i := range outs {
				if !equalTokens(first[i], outs[i]) {
					rep.BitIdentical = false
				}
			}
		}
		row.ColdTTFTP50Ms = ms(p50(waveTTFT[0]))
		row.WarmTTFTP50Ms = ms(p50(waveTTFT[1]))
		rep.Modes = append(rep.Modes, row)
	}

	// The analytic capacity win: a sequence's mean footprint with
	// isolated KV versus when its first PrefixTokens tokens are served
	// from a shared cached prefix.
	pool, err := kvpage.ForModel(cfg.KVBytes(1, kvTokens), 4, cfg)
	if err != nil {
		return err
	}
	gen, err := trace.NewPrefixGenerator(spec, seed)
	if err != nil {
		return err
	}
	var total int
	reqs := gen.Batch(nRequests)
	for _, r := range reqs {
		total += r.InputLen + r.OutputLen
	}
	mean := total / len(reqs)
	rep.Concurrency.MeanSeqTokens = mean
	rep.Concurrency.SharedPrefixTokens = spec.PrefixTokens
	rep.Concurrency.Isolated = pool.MaxConcurrentSequences(mean)
	rep.Concurrency.Shared = pool.MaxConcurrentSequencesShared(mean, spec.PrefixTokens)

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// chunkedBenchMode is one prefill configuration's measurement in the
// chunked bench report: short-request TTFT percentiles while long
// prompts trickle (or slam) in, exact client-side values.
type chunkedBenchMode struct {
	Name          string  `json:"name"`
	ShortTTFTP50  float64 `json:"short_ttft_p50_ms"`
	ShortTTFTP99  float64 `json:"short_ttft_p99_ms"`
	LongTTFTP50   float64 `json:"long_ttft_p50_ms"`
	PrefillChunks uint64  `json:"prefill_chunks"`
	WallMs        float64 `json:"wall_ms"`
}

// chunkedBenchReport is the chunked-prefill A/B payload: the same mixed
// short/long-prompt workload served monolithic versus chunked. The token
// streams must agree bit-for-bit; the report records that they did.
type chunkedBenchReport struct {
	Config struct {
		Model        string `json:"model"`
		Waves        int    `json:"waves"`
		ShortPerWave int    `json:"short_requests_per_wave"`
		ShortPrompt  int    `json:"short_prompt_tokens"`
		LongPrompt   int    `json:"long_prompt_tokens"`
		OutputTokens int    `json:"output_tokens"`
		Chunk        int    `json:"prefill_chunk"`
	} `json:"config"`
	BitIdentical bool               `json:"bit_identical"`
	Modes        []chunkedBenchMode `json:"modes"`
}

// runChunkedBench serves an identical mixed workload — each wave slams
// one long prompt and a burst of short prompts into the queue together —
// once with monolithic prefill and once with the given chunk size, and
// prints short-request TTFT percentiles for both as JSON. Monolithic
// admission prefills the whole long prompt inside one scheduling round,
// so a short request admitted in the same round stalls behind it;
// chunking bounds that stall to one chunk per round.
func runChunkedBench(modelName string, chunk int, seed int64) error {
	cfg, err := liveModelConfig(modelName)
	if err != nil {
		return err
	}
	const (
		waves        = 6
		shortPerWave = 6
		shortPrompt  = 4
		longPrompt   = 96
		outputTokens = 8
		maxBatch     = 8
	)
	if longPrompt+outputTokens > cfg.MaxSeqLen {
		return fmt.Errorf("chunked bench workload exceeds %s's %d-token context", cfg.Name, cfg.MaxSeqLen)
	}

	var rep chunkedBenchReport
	rep.Config.Model = cfg.Name
	rep.Config.Waves = waves
	rep.Config.ShortPerWave = shortPerWave
	rep.Config.ShortPrompt = shortPrompt
	rep.Config.LongPrompt = longPrompt
	rep.Config.OutputTokens = outputTokens
	rep.Config.Chunk = chunk
	rep.BitIdentical = true

	// The same deterministic request set for both modes.
	rng := rand.New(rand.NewSource(seed))
	type request struct{ prompt []int }
	var longs, shorts []request
	for w := 0; w < waves; w++ {
		p := make([]int, longPrompt)
		for i := range p {
			p[i] = rng.Intn(cfg.VocabSize)
		}
		longs = append(longs, request{prompt: p})
		for s := 0; s < shortPerWave; s++ {
			p := make([]int, shortPrompt)
			for i := range p {
				p[i] = rng.Intn(cfg.VocabSize)
			}
			shorts = append(shorts, request{prompt: p})
		}
	}

	var first [][]int
	for _, mode := range []int{0, chunk} {
		g, _, _, err := buildGateway(modelName, "partial", "none", maxBatch, 64, 0, false, mode, 0, 0, "", 0, 0, seed)
		if err != nil {
			return err
		}
		row := chunkedBenchMode{Name: "monolithic"}
		if mode > 0 {
			row.Name = fmt.Sprintf("chunked-%d", mode)
		}
		var (
			mu         sync.Mutex
			outs       = make([][]int, len(longs)+len(shorts))
			shortTTFTs []time.Duration
			longTTFTs  []time.Duration
		)
		start := time.Now()
		for w := 0; w < waves; w++ {
			var wg sync.WaitGroup
			submit := func(slot int, prompt []int, short bool) {
				defer wg.Done()
				res, err := g.Submit(context.Background(), prompt, outputTokens)
				if err != nil {
					return
				}
				mu.Lock()
				outs[slot] = res.Tokens
				if short {
					shortTTFTs = append(shortTTFTs, res.TTFT)
				} else {
					longTTFTs = append(longTTFTs, res.TTFT)
				}
				mu.Unlock()
			}
			// The long prompt enters the queue first, the burst right behind
			// it: every short request in the wave contends with its prefill.
			wg.Add(1 + shortPerWave)
			go submit(w, longs[w].prompt, false)
			for s := 0; s < shortPerWave; s++ {
				go submit(waves+w*shortPerWave+s, shorts[w*shortPerWave+s].prompt, true)
			}
			wg.Wait()
		}
		row.WallMs = ms(time.Since(start))
		snap := g.Snapshot()
		row.PrefillChunks = snap.PrefillChunks
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		err = g.Shutdown(ctx)
		cancel()
		if err != nil {
			return err
		}
		if len(shortTTFTs) != waves*shortPerWave || len(longTTFTs) != waves {
			return fmt.Errorf("%s served %d short / %d long requests, want %d / %d",
				row.Name, len(shortTTFTs), len(longTTFTs), waves*shortPerWave, waves)
		}
		sort.Slice(shortTTFTs, func(i, j int) bool { return shortTTFTs[i] < shortTTFTs[j] })
		row.ShortTTFTP50 = ms(pctDur(shortTTFTs, 0.50))
		row.ShortTTFTP99 = ms(pctDur(shortTTFTs, 0.99))
		row.LongTTFTP50 = ms(p50(longTTFTs))
		if first == nil {
			first = outs
		} else {
			for i := range outs {
				if !equalTokens(first[i], outs[i]) {
					rep.BitIdentical = false
				}
			}
		}
		rep.Modes = append(rep.Modes, row)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// pctDur returns the exact nearest-rank percentile of pre-sorted samples.
func pctDur(d []time.Duration, p float64) time.Duration {
	if len(d) == 0 {
		return 0
	}
	idx := int(p*float64(len(d))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(d) {
		idx = len(d) - 1
	}
	return d[idx]
}

func equalTokens(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runSimulator is the original analytic serving simulator.
func runSimulator(systemName, modelName, fwName, kind string, rate float64, n, maxBatch int, maxWait float64, seed int64, continuous bool, kvBudgetGB float64) {
	sys, err := lia.SystemByName(systemName)
	if err != nil {
		fatal(err)
	}
	m, err := lia.ModelByName(modelName)
	if err != nil {
		fatal(err)
	}
	fw := engine.LIA
	switch strings.ToLower(fwName) {
	case "lia":
	case "ipex":
		fw = engine.IPEX
	case "flexgen":
		fw = engine.FlexGen
	default:
		fatal(fmt.Errorf("unknown framework %q", fwName))
	}
	family := trace.Code
	if strings.HasPrefix(strings.ToLower(kind), "conv") {
		family = trace.Conversation
	}

	gen, err := trace.NewGenerator(family, 32, m.MaxSeqLen-family.MeanOutput(), seed)
	if err != nil {
		fatal(err)
	}
	reqs, err := serve.PoissonArrivals(gen, n, rate, seed+1)
	if err != nil {
		fatal(err)
	}
	cfg := serve.Config{
		System:             sys,
		Model:              m,
		Framework:          fw,
		MaxBatch:           maxBatch,
		MaxWait:            units.Seconds(maxWait),
		AssumeHostCapacity: true,
		KVBudget:           units.Bytes(kvBudgetGB) * units.GB,
	}
	simulate := serve.Simulate
	mode := "static batching"
	if continuous {
		simulate = serve.SimulateContinuous
		mode = "continuous batching"
	}
	metrics, err := simulate(cfg, reqs)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%s serving %s on %s — %d requests at %.2f req/s (%s trace, %s)\n",
		fw, m.Name, sys.Name, n, rate, family, mode)
	fmt.Printf("  completed   : %d in %v (%d batches, mean size %.1f)\n",
		metrics.Completed, metrics.Makespan, metrics.Batches, metrics.MeanBatchSize)
	fmt.Printf("  throughput  : %.1f tokens/s\n", metrics.Throughput)
	fmt.Printf("  latency     : mean %v, p50 %v, p95 %v, p99 %v\n",
		metrics.Mean, metrics.P50, metrics.P95, metrics.P99)
	fmt.Printf("  queueing    : mean %v\n", metrics.MeanQueueing)
	if metrics.Preemptions > 0 {
		fmt.Printf("  preemptions : %d (KV pool pressure)\n", metrics.Preemptions)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lia-serve:", err)
	os.Exit(1)
}
