package main

import (
	"fmt"
	"os"

	"github.com/lia-sim/lia/internal/scenario"
)

// runScenarioLab executes the standing scenario-lab experiment — the
// Default() matrix of workload scenarios × fault plans — and writes the
// deterministic JSON artifact to stdout (the BENCH_scenario.json
// baseline) with the human-readable SLO verdict table on stderr.
// trials/live override the experiment's trial counts when positive;
// the artifact is byte-for-byte reproducible from (declaration, seed).
func runScenarioLab(trials, live int, seed int64) error {
	e := scenario.Default()
	if trials > 0 {
		e.Trials = trials
	}
	if live >= 0 {
		e.LiveTrials = live
	}
	if seed != 0 {
		e.Seed = seed
	}
	res, err := scenario.Run(e)
	if err != nil {
		return err
	}
	b, err := res.JSON()
	if err != nil {
		return err
	}
	if _, err := os.Stdout.Write(b); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "scenario lab %q: %d cells × %d trials (seed %d)\n\n%s",
		res.Name, len(res.Cells), res.TrialsPerCell, res.Seed, res.Markdown())
	return nil
}
