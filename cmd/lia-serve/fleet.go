package main

import (
	"encoding/json"
	"fmt"
	"os"

	"github.com/lia-sim/lia/internal/gateway"
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/router"
	"github.com/lia-sim/lia/internal/trace"
	"github.com/lia-sim/lia/internal/units"
)

// fleetBenchCell is one (policy, mix, replica-count) measurement in
// BENCH_fleet.json: the same saturating blend burst replayed through a
// virtual fleet, with throughput and client TTFT percentiles.
type fleetBenchCell struct {
	Policy        string   `json:"policy"`
	Mix           string   `json:"mix"`
	Replicas      int      `json:"replicas"`
	Devices       []string `json:"devices"`
	Completed     int      `json:"completed"`
	Shed          int      `json:"shed,omitempty"`
	ThroughputRPS float64  `json:"throughput_rps"`
	SpeedupVs1    float64  `json:"speedup_vs_1"`
	TTFTP50Ms     float64  `json:"ttft_p50_ms"`
	TTFTP99Ms     float64  `json:"ttft_p99_ms"`
	MakespanS     float64  `json:"makespan_s"`
}

// fleetBenchReport is the BENCH_fleet.json payload.
type fleetBenchReport struct {
	Description string            `json:"description"`
	Model       string            `json:"model"`
	Requests    int               `json:"requests"`
	CodeRatio   float64           `json:"code_ratio"`
	MaxBatch    int               `json:"max_batch"`
	KVTokens    int               `json:"kv_tokens_per_replica"`
	Cells       []fleetBenchCell  `json:"cells"`
	Summary     map[string]string `json:"summary"`
}

// fleetBenchDevice is one entry of the heterogeneous rotation: a system
// plus an optional tensor-parallel shard count.
type fleetBenchDevice struct {
	label  string
	system hw.System
	tp     int
}

// runFleetBench replays one saturating burst of the mixed code/chat
// blend through virtual fleets across the bench matrix — placement
// policy (p2c vs round-robin) × replica count (1/2/4/8) × fleet mix
// (homogeneous A100 vs a heterogeneous A100/H100/CPU-only/TP rotation)
// — and prints throughput plus TTFT percentiles per cell as JSON (the
// BENCH_fleet.json baseline). Every replica serves the same model; the
// burst arrives faster than any fleet drains it, so throughput measures
// fleet capacity and TTFT the queueing it buys down.
func runFleetBench(modelName string, seed int64) error {
	cfg, err := liveModelConfig(modelName)
	if err != nil {
		return err
	}
	const (
		nReqs     = 256
		codeRatio = 0.5
		maxBatch  = 8
		kvTokens  = 2048
	)
	gen, err := trace.NewBlendGenerator(codeRatio, 8, 48, seed)
	if err != nil {
		return err
	}
	// One shared request stream: every cell replays the identical burst,
	// so the matrix axes are a controlled A/B. Arrivals ramp in far
	// faster than even the 8-replica fleet drains them (saturation).
	reqs := make([]gateway.ReplayRequest, nReqs)
	for i, r := range gen.Batch(nReqs) {
		out := r.OutputLen
		if out > 48 {
			out = 48
		}
		reqs[i] = gateway.ReplayRequest{
			PromptLen: r.InputLen,
			OutputLen: out,
			Arrival:   units.Seconds(float64(i) * 0.005),
		}
	}

	cpuOnly := hw.System{Name: "SPR-CPU", CPU: hw.SPR}
	rotation := []fleetBenchDevice{
		{label: "a100", system: hw.SPRA100},
		{label: "h100", system: hw.SPRH100},
		{label: "cpu-amx", system: cpuOnly},
		{label: "a100-tp4", system: hw.DGXA100, tp: 4},
	}
	mixes := []struct {
		name    string
		devices func(n int) []fleetBenchDevice
	}{
		{"homogeneous", func(n int) []fleetBenchDevice {
			out := make([]fleetBenchDevice, n)
			for i := range out {
				out[i] = rotation[0]
			}
			return out
		}},
		{"mixed", func(n int) []fleetBenchDevice {
			out := make([]fleetBenchDevice, n)
			for i := range out {
				out[i] = rotation[i%len(rotation)]
			}
			return out
		}},
	}

	rep := fleetBenchReport{
		Description: "virtual fleet replay: one saturating 256-request code/chat blend burst placed across N replicas; p2c vs round-robin as the A/B axis, homogeneous (all SPR-A100) vs mixed (A100/H100/CPU-only-AMX/DGX-TP4 rotation) fleets",
		Model:       cfg.Name,
		Requests:    nReqs,
		CodeRatio:   codeRatio,
		MaxBatch:    maxBatch,
		KVTokens:    kvTokens,
		Summary:     map[string]string{},
	}
	base := map[string]float64{}
	for _, policy := range []string{router.PolicyP2C, router.PolicyRoundRobin} {
		for _, mix := range mixes {
			for _, n := range []int{1, 2, 4, 8} {
				devices := mix.devices(n)
				replicas := make([]router.ReplayReplica, n)
				labels := make([]string, n)
				for i, d := range devices {
					replicas[i] = router.ReplayReplica{
						Name:       fmt.Sprintf("%s-%d", d.label, i),
						System:     d.system,
						TPWays:     d.tp,
						MaxBatch:   maxBatch,
						QueueDepth: nReqs,
						KVTokens:   kvTokens,
					}
					labels[i] = d.label
				}
				res, err := router.FleetReplay(router.FleetConfig{
					Policy:   policy,
					Seed:     seed,
					Model:    cfg,
					Replicas: replicas,
				}, reqs)
				if err != nil {
					return fmt.Errorf("fleet bench %s/%s/%d: %w", policy, mix.name, n, err)
				}
				cell := fleetBenchCell{
					Policy:        policy,
					Mix:           mix.name,
					Replicas:      n,
					Devices:       labels,
					Completed:     res.Completed,
					Shed:          res.Shed,
					ThroughputRPS: res.ThroughputRPS,
					TTFTP50Ms:     secMs(router.Percentile(res.TTFTs, 50)),
					TTFTP99Ms:     secMs(router.Percentile(res.TTFTs, 99)),
					MakespanS:     float64(res.Makespan),
				}
				key := policy + "/" + mix.name
				if n == 1 {
					base[key] = res.ThroughputRPS
				}
				if b := base[key]; b > 0 {
					cell.SpeedupVs1 = res.ThroughputRPS / b
				}
				rep.Cells = append(rep.Cells, cell)
			}
		}
	}

	for _, c := range rep.Cells {
		if c.Replicas == 4 {
			rep.Summary[c.Policy+"/"+c.Mix+"/4-replica-speedup"] = fmt.Sprintf("%.2fx", c.SpeedupVs1)
		}
	}
	rep.Summary["note"] = "mixed-fleet throughput is makespan-tail-bound by the CPU-only AMX replica (0.29x an A100): p2c's pressure signal steers load off the straggler once its queue builds, but placed work never migrates, so the slow node still sets the tail — the gap between p2c and round-robin in the mixed rows is the placement win"

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
